"""The end-to-end SwitchV harness (§2 "Design").

Given a P4 model and a switch under test, runs:

* **control-plane validation** — a p4-fuzzer campaign (valid + mutated
  requests, oracle judging, read-back checks);
* **data-plane validation** — installs a forwarding state (production
  replay or synthetic), generates coverage-directed test packets with
  p4-symbolic (cached per §6.3), replays each against the switch, and
  checks the observed behaviour is in the set BMv2 admits under
  round-robin hashing; also audits the packet-io channels for lost punts
  and unexpected traffic.

The harness never predicts a single outcome: every judgement is an
admissible-set membership test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bmv2.entries import EntryDecodeError, InstalledEntry, decode_table_entry
from repro.bmv2.packet import deparse_packet
from repro.bmv2.simulator import Bmv2Simulator
from repro.fuzzer import FuzzerConfig, FuzzResult, P4Fuzzer
from repro.fuzzer.batching import make_batches, order_inserts
from repro.p4.ast import P4Program
from repro.p4.p4info import build_p4info
from repro.p4rt.messages import TableEntry, Update, UpdateType, WriteRequest
from repro.smt.pool import SolverPool
from repro.switchv.report import Incident, IncidentKind, IncidentLog
from repro.symbolic.cache import PacketCache, cache_key
from repro.symbolic.coverage import CoverageGoal, CoverageMode, entry_goal
from repro.symbolic.packets import GeneratedPacket, PacketGenerator


def standard_special_goals() -> List[CoverageGoal]:
    """Harness-supplied coverage assertions for notoriously buggy inputs.

    §5 lets test engineers pose custom assertions over X/Y/T; these two are
    the stock ones every nightly run includes: the IPv4 limited-broadcast
    address (a chip drops it silently — Appendix A) and the TTL boundary
    (chips trap TTL ≤ 1 behind the model's back)."""

    def ipv4_broadcast(execution):
        term = execution.inputs.get("ipv4.dst_addr")
        if term is None or term.is_const:
            return None
        return term.eq(0xFFFFFFFF)

    def ipv4_ttl_boundary(execution):
        term = execution.inputs.get("ipv4.ttl")
        if term is None or term.is_const:
            return None
        return term.eq(1)

    return [
        CoverageGoal(name="special:ipv4_broadcast", condition=ipv4_broadcast),
        CoverageGoal(name="special:ipv4_ttl_1", condition=ipv4_ttl_boundary),
    ]


@dataclass
class DataPlaneStats:
    packets_tested: int = 0
    goals_total: int = 0
    goals_covered: int = 0
    generation_seconds: float = 0.0
    testing_seconds: float = 0.0
    cache_hit: bool = False
    # Generation-effort attribution (see repro.switchv.report.render_generation_stats).
    goals_from_cache: int = 0
    goals_subsumed: int = 0
    solver_queries: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    gates_shared: int = 0
    workers: int = 1


@dataclass
class ValidationReport:
    """Everything one SwitchV run produced."""

    incidents: IncidentLog = field(default_factory=IncidentLog)
    fuzz: Optional[FuzzResult] = None
    data_plane: Optional[DataPlaneStats] = None

    @property
    def ok(self) -> bool:
        return not self.incidents


class SwitchVHarness:
    """Validates one switch against one P4 model."""

    def __init__(
        self,
        model: P4Program,
        switch,
        valid_ports: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
        cache: Optional[PacketCache] = None,
        simulator_faults=None,
        workers: int = 1,
        fault_profile=None,
        retry_policy=None,
        lint_model: bool = False,
        pipeline_depth: int = 1,
        reuse_solvers: bool = True,
        solver_pool: Optional[SolverPool] = None,
        coverage_guided: bool = False,
    ) -> None:
        self.model = model
        # Fail-fast gate: lint the model before anything derives from it.
        # An error-severity finding means the model is unusable as a
        # specification; every validate_* entry point then refuses to run
        # and reports the findings as MODEL_ERROR incidents instead.
        self.lint_report = None
        if lint_model:
            from repro.analysis import analyze_program

            self.lint_report = analyze_program(model)
        # Transport-availability testing: wrap the P4RT session in a
        # fault-injecting channel plus a retrying client.  The behavioural
        # fault registry (repro.switch.faults) is orthogonal to this layer.
        if fault_profile is not None or retry_policy is not None:
            from repro.p4rt.retry import build_resilient_client

            switch = build_resilient_client(
                switch, fault_profile=fault_profile, retry_policy=retry_policy
            )
        self.switch = switch
        # A model that failed the lint gate may not even survive P4Info
        # derivation (undefined fields crash field_width), so don't try.
        self.p4info = (
            None
            if self.lint_report is not None and self.lint_report.has_errors
            else build_p4info(model)
        )
        self.valid_ports = tuple(valid_ports)
        self.cache = cache
        # Goal-solving parallelism for packet generation (1 = sequential).
        self.workers = max(1, workers)
        # Fuzz campaigns keep up to this many independent batches in
        # flight (repro.fuzzer.pipeline); 1 = the sequential loop.
        self.pipeline_depth = max(1, pipeline_depth)
        # Greybox feedback for fuzz campaigns (repro.fuzzer.feedback):
        # coverage-score every judged batch against the model and bias
        # generation toward uncovered regions.
        self.coverage_guided = coverage_guided
        # Fault registry consulted by the BMv2 simulator only (the paper
        # found simulator bugs too; they surface as mismatches like any
        # other divergence).
        self.simulator_faults = simulator_faults
        # Cross-state incremental solving: one pool of per-(program,
        # profile) solvers — plus the fuzzer's per-table constraint solvers
        # — kept warm across every table state this harness validates
        # (fuzzing batches, churn replays, re-validation after an edit).
        # Witness packets are canonical (solver-history-independent), so a
        # warm pool produces byte-identical results to a cold run.
        if solver_pool is not None:
            self.solver_pool: Optional[SolverPool] = solver_pool
        else:
            self.solver_pool = SolverPool() if reuse_solvers else None

    def _lint_gate(self, report: ValidationReport) -> bool:
        """True when the model failed the lint gate (campaign must not run).

        Error-severity diagnostics surface as MODEL_ERROR incidents with
        the same structured table attribution the rest of the incident
        pipeline uses, so metrics and triage treat a broken model exactly
        like any other model artifact failure.
        """
        if self.lint_report is None or not self.lint_report.has_errors:
            return False
        for diag in self.lint_report.errors:
            report.incidents.report(
                Incident(
                    kind=IncidentKind.MODEL_ERROR,
                    summary=f"model lint [{diag.code}] {diag.location}: "
                    f"{diag.message}",
                    expected=diag.fix_hint,
                    source="repro-analysis",
                    table_name=diag.table_name,
                )
            )
        return True

    def _table_name(self, table_id: int) -> str:
        table = self.p4info.tables.get(table_id)
        return table.name if table is not None else ""

    @staticmethod
    def _goal_table(goal: str) -> str:
        """The table an entry-coverage goal targets ('' for special goals)."""
        if goal.startswith("entry:"):
            return goal.split(":", 2)[1]
        return ""

    # ------------------------------------------------------------------
    # Control plane (p4-fuzzer)
    # ------------------------------------------------------------------
    def validate_control_plane(
        self, config: Optional[FuzzerConfig] = None
    ) -> ValidationReport:
        report = ValidationReport()
        if self._lint_gate(report):
            return report
        config = config or FuzzerConfig()
        if self.pipeline_depth > 1 and config.pipeline_depth == 1:
            # The harness knob applies unless the caller's config already
            # chose a depth of its own.
            import dataclasses

            config = dataclasses.replace(config, pipeline_depth=self.pipeline_depth)
        if self.coverage_guided and not config.coverage_guided:
            import dataclasses

            config = dataclasses.replace(config, coverage_guided=True)
        fuzzer = P4Fuzzer(
            self.p4info,
            self.switch,
            config,
            solver_pool=self.solver_pool,
            model=self.model,
        )
        result = fuzzer.run()
        report.fuzz = result
        report.incidents.extend(result.incidents)
        return report

    # ------------------------------------------------------------------
    # Data plane (p4-symbolic + BMv2 differential)
    # ------------------------------------------------------------------
    def validate_data_plane(
        self,
        entries: Sequence[TableEntry],
        mode: CoverageMode = CoverageMode.ENTRY,
        custom_goals: Sequence[CoverageGoal] = (),
        install: bool = True,
        include_special_goals: bool = True,
        exercise_update_path: bool = True,
    ) -> ValidationReport:
        report = ValidationReport()
        if self._lint_gate(report):
            return report
        stats = DataPlaneStats()
        report.data_plane = stats

        caller_supplied_goals = bool(custom_goals)
        if include_special_goals:
            custom_goals = list(custom_goals) + standard_special_goals()

        if install:
            state = self._install(entries, report)
            if state is None:
                return report
        else:
            # The entries are already on the switch (e.g. the state a fuzz
            # campaign left behind — the §7 extension of feeding fuzzed
            # entries to p4-symbolic).
            state = self._decode_state(entries, report)

        packets = self._generate_packets(
            state, mode, custom_goals, stats,
            cacheable=not caller_supplied_goals,
        )
        simulator = Bmv2Simulator(self.model, state, faults=self.simulator_faults)

        start = time.perf_counter()
        expected_punts = 0
        for generated in packets:
            expected_punts += self._test_packet(generated, simulator, report)
        self._audit_packet_io(expected_punts, report)
        self._test_packet_out(packets, simulator, report)
        if install and exercise_update_path:
            self._exercise_update_path(entries, packets, simulator, report)
        stats.testing_seconds = time.perf_counter() - start
        stats.packets_tested = len(packets)
        return report

    def _exercise_update_path(
        self,
        entries: Sequence[TableEntry],
        packets: List[GeneratedPacket],
        simulator: Bmv2Simulator,
        report: ValidationReport,
    ) -> None:
        """MODIFY every entry in place, then replay the test packets.

        A content-preserving modify must be a behavioural no-op; the update
        choreography (diff/remove/re-add inside the agent) is where several
        Appendix-A bugs lived and a fresh install never exercises it.
        """
        updates = [Update(UpdateType.MODIFY, e) for e in entries]
        for batch in make_batches(self.p4info, updates):
            response = self.switch.write(WriteRequest(updates=tuple(batch)))
            for update, st in zip(batch, response.statuses, strict=False):
                if not st.ok:
                    report.incidents.report(
                        Incident(
                            kind=IncidentKind.VALID_REQUEST_REJECTED,
                            summary=f"no-op modify rejected: {st.code.name} on "
                            f"table 0x{update.entry.table_id:08x}",
                            observed=st.message,
                            test_input=repr(update.entry),
                            source="p4-fuzzer",
                            table_id=update.entry.table_id,
                            table_name=self._table_name(update.entry.table_id),
                        )
                    )
        for generated in packets:
            payload = deparse_packet(generated.packet)
            try:
                observed = self.switch.send_packet(payload, generated.ingress_port)
            except Exception as exc:
                report.incidents.report(
                    Incident(
                        kind=IncidentKind.SWITCH_UNRESPONSIVE,
                        summary=f"switch raised {type(exc).__name__} after update sweep",
                        observed=str(exc),
                        source="p4-symbolic",
                    )
                )
                return
            signature = observed.behavior_signature()
            if not simulator.admits(generated.packet, generated.ingress_port, signature):
                report.incidents.report(
                    Incident(
                        kind=IncidentKind.FORWARDING_MISMATCH,
                        summary="behavior changed after a content-preserving modify "
                        f"(goal {generated.goal})",
                        observed=f"egress={observed.egress_port} punt={observed.punted}",
                        test_input=f"{generated.profile} packet, port {generated.ingress_port}",
                        source="p4-symbolic",
                        table_name=self._goal_table(generated.goal),
                    )
                )
        self.switch.drain_packet_ins()

    def validate(
        self,
        entries: Sequence[TableEntry],
        fuzzer_config: Optional[FuzzerConfig] = None,
        mode: CoverageMode = CoverageMode.ENTRY,
    ) -> ValidationReport:
        """Full SwitchV run: control-plane then data-plane validation."""
        report = self.validate_control_plane(fuzzer_config)
        if self.lint_report is not None and self.lint_report.has_errors:
            return report
        # §7 extension: replay the state the fuzz campaign left behind
        # through p4-symbolic, targeting only the churned (modified)
        # entries — update-path bugs are invisible to a fresh install.
        if report.fuzz is not None and report.fuzz.modified_entries:
            from repro.p4.constraints.refs import ReferenceGraph

            refs = ReferenceGraph(self.p4info)
            modified_values = set()
            for wire in report.fuzz.modified_entries:
                modified_values.update(refs.exported_values(wire))
            # Target the modified entries and everything that references
            # them (a broken update blackholes traffic at the *referrer*).
            targets = list(report.fuzz.modified_entries)
            targets.extend(
                wire
                for wire in report.fuzz.final_entries
                if any(
                    (r.target_table, r.target_key, r.value) in modified_values
                    for r in refs.references_of(wire)
                )
            )
            goals = []
            for wire in targets:
                try:
                    decoded = decode_table_entry(self.p4info, wire)
                except EntryDecodeError:
                    continue
                goals.append(entry_goal(decoded.table_name, decoded.identity()))
            if goals:
                churn = self.validate_data_plane(
                    report.fuzz.final_entries,
                    mode=CoverageMode.CUSTOM,
                    custom_goals=goals,
                    install=False,
                    include_special_goals=False,
                )
                report.incidents.extend(churn.incidents)
        # Fresh-state data-plane validation on the provided workload.
        self.clear_switch()
        data = self.validate_data_plane(entries, mode)
        report.incidents.extend(data.incidents)
        report.data_plane = data.data_plane
        return report

    # ------------------------------------------------------------------
    # Data-plane internals
    # ------------------------------------------------------------------
    def clear_switch(self) -> None:
        """Delete all installed entries (between validation phases).

        Referential integrity forces referenced entries to outlive their
        referrers, so deletion proceeds in passes until the read-back is
        empty or no pass makes progress.
        """
        from repro.p4rt.messages import ReadRequest

        for _pass in range(16):
            entries = list(self.switch.read(ReadRequest(table_id=0)).entries)
            if not entries:
                return
            progressed = False
            updates = [Update(UpdateType.DELETE, e) for e in entries]
            for batch in make_batches(self.p4info, updates):
                response = self.switch.write(WriteRequest(updates=tuple(batch)))
                progressed = progressed or any(s.ok for s in response.statuses)
            if not progressed:
                return

    def _install(
        self, entries: Sequence[TableEntry], report: ValidationReport
    ) -> Optional[Dict[str, List[InstalledEntry]]]:
        """Push the pipeline config and the forwarding state."""
        status = self.switch.set_forwarding_pipeline_config(self.p4info)
        if not status.ok:
            report.incidents.report(
                Incident(
                    kind=IncidentKind.PIPELINE_CONFIG,
                    summary=f"pipeline config rejected: {status.code.name}",
                    observed=status.message,
                    source="p4-symbolic",
                )
            )
            return None
        updates = order_inserts(
            self.p4info, [Update(UpdateType.INSERT, e) for e in entries]
        )
        # Dependent entries must land in different batches (§4.4); the same
        # batcher the fuzzer uses serves the installation path.
        install_failed = False
        for batch in make_batches(self.p4info, updates):
            response = self.switch.write(WriteRequest(updates=tuple(batch)))
            for update, st in zip(batch, response.statuses, strict=False):
                if not st.ok:
                    install_failed = True
                    report.incidents.report(
                        Incident(
                            kind=IncidentKind.VALID_REQUEST_REJECTED,
                            summary=f"data-plane state install failed: "
                            f"{st.code.name} on table 0x{update.entry.table_id:08x}",
                            observed=st.message,
                            test_input=repr(update.entry),
                            source="p4-symbolic",
                            table_id=update.entry.table_id,
                            table_name=self._table_name(update.entry.table_id),
                        )
                    )
        state = self._decode_state(entries, report)
        if install_failed:
            # Continue: data-plane testing against a partially installed
            # switch still produces (attributable) mismatches, exactly like
            # the real system.
            pass
        return state

    def _decode_state(
        self, entries: Sequence[TableEntry], report: ValidationReport
    ) -> Dict[str, List[InstalledEntry]]:
        state: Dict[str, List[InstalledEntry]] = {}
        for entry in entries:
            try:
                decoded = decode_table_entry(self.p4info, entry)
            except EntryDecodeError as exc:
                report.incidents.report(
                    Incident(
                        kind=IncidentKind.PIPELINE_CONFIG,
                        summary=f"workload entry failed reference decoding: {exc}",
                        test_input=repr(entry),
                        source="p4-symbolic",
                    )
                )
                continue
            state.setdefault(decoded.table_name, []).append(decoded)
        return state

    def _generate_packets(
        self,
        state: Dict[str, List[InstalledEntry]],
        mode: CoverageMode,
        custom_goals: Sequence[CoverageGoal],
        stats: DataPlaneStats,
        cacheable: bool = True,
    ) -> List[GeneratedPacket]:
        # The harness's standard special goals are deterministic, so they
        # can live under the cache; caller-supplied goals cannot.
        start = time.perf_counter()
        key = None
        if self.cache is not None and cacheable:
            key = cache_key(self.model, state, mode, self.valid_ports)
            cached = self.cache.lookup(key)
            if cached is not None:
                stats.generation_seconds = time.perf_counter() - start
                stats.goals_total = cached.stats.goals_total
                stats.goals_covered = cached.stats.goals_covered
                stats.cache_hit = True
                return cached.packets
        generator = PacketGenerator(
            self.model, state, self.valid_ports, solver_pool=self.solver_pool
        )
        # The whole-run key missed (or caching is off for this request);
        # the per-goal layer still recovers every goal whose solved formula
        # is unchanged since an earlier, slightly different state.
        goal_cache = self.cache if cacheable else None
        result = generator.generate(
            mode, custom_goals, workers=self.workers, goal_cache=goal_cache
        )
        stats.generation_seconds = time.perf_counter() - start
        stats.goals_total = result.stats.goals_total
        stats.goals_covered = result.stats.goals_covered
        stats.goals_from_cache = result.stats.goals_from_cache
        stats.goals_subsumed = result.stats.goals_subsumed
        stats.solver_queries = result.stats.solver_queries
        stats.sat_conflicts = result.stats.sat_conflicts
        stats.sat_decisions = result.stats.sat_decisions
        stats.sat_propagations = result.stats.sat_propagations
        stats.cnf_vars = result.stats.cnf_vars
        stats.cnf_clauses = result.stats.cnf_clauses
        stats.gates_shared = result.stats.gates_shared
        stats.workers = result.stats.workers
        if key is not None:
            self.cache.store(key, result)
        return result.packets

    def _test_packet(
        self, generated: GeneratedPacket, simulator: Bmv2Simulator, report: ValidationReport
    ) -> int:
        """Run one test packet; returns 1 if the switch punted it."""
        payload = deparse_packet(generated.packet)
        try:
            observed = self.switch.send_packet(payload, generated.ingress_port)
        except Exception as exc:
            report.incidents.report(
                Incident(
                    kind=IncidentKind.SWITCH_UNRESPONSIVE,
                    summary=f"switch raised {type(exc).__name__} on test packet",
                    observed=str(exc),
                    test_input=generated.goal,
                    source="p4-symbolic",
                )
            )
            return 0
        if observed.extra_egress:
            port, payload = observed.extra_egress[0]
            report.incidents.report(
                Incident(
                    kind=IncidentKind.UNEXPECTED_EGRESS,
                    summary=f"switch emitted {len(observed.extra_egress)} unsolicited "
                    "packet(s) on data ports",
                    observed=f"port {port}: {payload[:16].hex()}",
                    source="p4-symbolic",
                )
            )
        signature = observed.behavior_signature()
        if not simulator.admits(generated.packet, generated.ingress_port, signature):
            behaviors = simulator.behaviors(generated.packet, generated.ingress_port)
            report.incidents.report(
                Incident(
                    kind=IncidentKind.FORWARDING_MISMATCH,
                    summary=f"behavior not admitted by model for goal {generated.goal}",
                    expected=" | ".join(repr(b.result) for b in behaviors[:4]),
                    observed=f"egress={observed.egress_port} punt={observed.punted}",
                    test_input=f"{generated.profile} packet, port {generated.ingress_port}",
                    source="p4-symbolic",
                    table_name=self._goal_table(generated.goal),
                )
            )
        return 1 if observed.punted else 0

    def _audit_packet_io(self, expected_punts: int, report: ValidationReport) -> None:
        """Check the packet-in channel carried exactly the punted packets."""
        drain = getattr(self.switch, "drain_packet_ins", None)
        if drain is None:
            return
        packet_ins = drain()
        if len(packet_ins) < expected_punts:
            report.incidents.report(
                Incident(
                    kind=IncidentKind.PACKET_IO,
                    summary=f"{expected_punts - len(packet_ins)} punted packet(s) never "
                    "arrived on the packet-in channel",
                    expected=f"{expected_punts} packet-ins",
                    observed=f"{len(packet_ins)} packet-ins",
                    source="p4-symbolic",
                )
            )
        elif len(packet_ins) > expected_punts:
            report.incidents.report(
                Incident(
                    kind=IncidentKind.UNEXPECTED_PACKET_IN,
                    summary=f"{len(packet_ins) - expected_punts} unexpected packet(s) "
                    "punted to the controller",
                    expected=f"{expected_punts} packet-ins",
                    observed=f"{len(packet_ins)} packet-ins "
                    f"(first extra: {packet_ins[-1].payload[:16].hex()})",
                    source="p4-symbolic",
                )
            )

    def _test_packet_out(
        self, packets: List[GeneratedPacket], simulator: Bmv2Simulator, report: ValidationReport
    ) -> None:
        """Validate the packet-out path (§6.1 found several bugs here).

        1. Direct packet-out on every port must be emitted on exactly that
           port and must not bounce back on the packet-in channel.
        2. A submit-to-ingress injection of a model-forwarded packet must
           traverse the pipeline like a data-plane packet.
        """
        from repro.p4rt.messages import PacketOut

        packet_out = getattr(self.switch, "packet_out", None)
        drain_egress = getattr(self.switch, "drain_egress", None)
        if packet_out is None or drain_egress is None:
            return
        self.switch.drain_packet_ins()
        drain_egress()
        probe = b"\x02\xbb\x00\x00\x00\x42\x02\xaa\x00\x00\x00\x17\x08\x00" + bytes(20)
        for port in self.valid_ports:
            status = packet_out(PacketOut(payload=probe, egress_port=port))
            if not status.ok:
                report.incidents.report(
                    Incident(
                        kind=IncidentKind.PACKET_IO,
                        summary=f"packet-out on port {port} rejected: {status.code.name}",
                        observed=status.message,
                        source="p4-symbolic",
                    )
                )
        emitted_ports = {port for port, _payload in drain_egress()}
        missing = set(self.valid_ports) - emitted_ports
        if missing:
            report.incidents.report(
                Incident(
                    kind=IncidentKind.PACKET_IO,
                    summary=f"packet-out never reached {len(missing)} port(s)",
                    expected=f"egress on ports {sorted(self.valid_ports)}",
                    observed=f"egress on ports {sorted(emitted_ports)}",
                    source="p4-symbolic",
                )
            )
        bounced = self.switch.drain_packet_ins()
        if bounced:
            report.incidents.report(
                Incident(
                    kind=IncidentKind.UNEXPECTED_PACKET_IN,
                    summary=f"{len(bounced)} packet-out packet(s) punted back to the "
                    "controller",
                    observed=f"first: {bounced[0].payload[:16].hex()}",
                    source="p4-symbolic",
                )
            )
        # Submit-to-ingress: pick a generated packet the model forwards.
        # Injection happens at the CPU port (0), so the admissible set must
        # be computed for that ingress port.
        for generated in packets:
            behaviors = simulator.behaviors(generated.packet, 0)
            forwarded_ports = {
                b.result.egress_port for b in behaviors if b.result.egress_port is not None
            }
            if not forwarded_ports or any(b.result.punted for b in behaviors):
                continue
            payload = deparse_packet(generated.packet)
            status = packet_out(PacketOut(payload=payload, egress_port=0, submit_to_ingress=True))
            emitted = drain_egress()
            if status.ok and not emitted:
                report.incidents.report(
                    Incident(
                        kind=IncidentKind.PACKET_IO,
                        summary="submit-to-ingress packet vanished (model forwards it)",
                        expected=f"egress on one of {sorted(forwarded_ports)}",
                        observed="no egress",
                        source="p4-symbolic",
                    )
                )
            elif emitted and emitted[0][0] not in forwarded_ports:
                report.incidents.report(
                    Incident(
                        kind=IncidentKind.FORWARDING_MISMATCH,
                        summary="submit-to-ingress packet egressed on an inadmissible port",
                        expected=f"one of {sorted(forwarded_ports)}",
                        observed=f"port {emitted[0][0]}",
                        source="p4-symbolic",
                    )
                )
            self.switch.drain_packet_ins()
            break
