"""repro.switchv — the SwitchV validation harness (§2 "Design").

Combines the two test generators with their judges:

* control-plane API validation: :mod:`repro.fuzzer` generates valid and
  interestingly-invalid P4Runtime requests; the oracle judges responses and
  read-backs against the P4Runtime specification instantiated for the
  model.
* data-plane validation: :mod:`repro.symbolic` generates coverage-directed
  test packets; the harness replays them against the switch and the BMv2
  simulator and checks the switch's behaviour is in the model's admissible
  set.

This package holds the harness itself (:mod:`repro.switchv.harness`),
incident reporting (:mod:`repro.switchv.report`), and the trivial
integration test suite of §6.2 (:mod:`repro.switchv.trivial`).
"""

from repro.switchv.report import Incident, IncidentKind, IncidentLog

__all__ = [
    "FleetReport",
    "FleetTask",
    "Incident",
    "IncidentKind",
    "IncidentLog",
    "SwitchVHarness",
    "ValidationReport",
    "run_fleet_campaign",
]


def __getattr__(name):
    # The harness pulls in the fuzzer, whose oracle reports incidents via
    # this package; importing it lazily keeps the dependency acyclic.
    if name in ("SwitchVHarness", "ValidationReport"):
        from repro.switchv import harness

        return getattr(harness, name)
    if name in ("FleetReport", "FleetTask", "run_fleet_campaign"):
        from repro.switchv import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
