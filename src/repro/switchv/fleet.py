"""Fleet campaigns: the fault catalogue sharded across worker processes.

SwitchV's nightly value comes from running the *whole* catalogue —
behavioural faults × transport profiles × stack kinds — every night (§6,
Tables 1–2), but :func:`repro.switchv.campaign.run_full_campaign` executes
it strictly sequentially.  Each catalogue entry is an independent,
fully-seeded campaign against its own freshly-built stack, which makes the
catalogue embarrassingly parallel, exactly like the per-goal solver
cascades in :mod:`repro.symbolic.parallel`.  This module shards the task
list round-robin across ``workers`` forked processes and merges the
per-worker ledgers deterministically.

Robustness contract (mirroring ``repro.symbolic.parallel``):

* ``workers=1`` (or a single task, or a platform without the ``fork``
  start method) never builds a pool — the tasks run in-process on the
  exact sequential path.
* A crashed worker (OOM-killed, segfaulted, fault-injected) loses only
  its shard's progress: the parent detects the broken future and re-runs
  every unfinished task in-process, so a nightly run is never lost to a
  worker death.
* **Determinism.**  Every task is a pure function of its picklable
  description (fault name, stack kind, transport profile, seed), and the
  merge folds results in task order — never completion order — so a
  fleet run produces the identical :class:`FaultOutcome` verdicts and
  incident dedup keys as the sequential run of the same seeds.

Worker entry points must be picklable, which is why campaign
*construction* lives in module-level functions
(:func:`repro.switchv.campaign.build_campaign`) rather than closures:
workers receive only ``(FleetTask, CampaignConfig)`` across the process
boundary and build stacks/harnesses on their own side of the fork.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.switch.faults import faults_for_stack
from repro.switchv.campaign import (
    STACK_PROGRAMS,
    CampaignConfig,
    FaultOutcome,
    SoakOutcome,
    run_fault_campaign,
    run_soak_cycle,
)
from repro.switchv.report import (
    Incident,
    IncidentKind,
    IncidentLog,
    merge_incident_logs,
    merge_transport_summaries,
)

# Test hook: when True, forked workers die immediately (inherited at fork
# time), exercising the broken-pool -> in-process degradation path.
_FAULT_INJECT = False


@dataclass(frozen=True)
class FleetTask:
    """One unit of fleet work.  Frozen and picklable by construction."""

    kind: str  # "fault" (one catalogue campaign) | "soak" (one soak cycle)
    stack_kind: str  # "pins" | "cerberus"
    fault_name: Optional[str] = None  # fault tasks only
    # Transport profile name from repro.p4rt.channel.PROFILES injected for
    # this task; None = whatever the CampaignConfig already says.
    profile: Optional[str] = None
    cycle: int = 0  # soak tasks: cycle index (seed = config.seed + cycle)

    def describe(self) -> str:
        if self.kind == "soak":
            return f"soak[{self.stack_kind}/{self.profile}] cycle {self.cycle}"
        suffix = f" @{self.profile}" if self.profile else ""
        return f"{self.stack_kind}/{self.fault_name}{suffix}"


@dataclass
class FleetResult:
    """One task's outcome (exactly one of the two fields is set)."""

    task: FleetTask
    outcome: Optional[FaultOutcome] = None  # fault tasks
    soak: Optional[SoakOutcome] = None  # soak tasks


@dataclass
class FleetReport:
    """The merged campaign report: per-task results in deterministic task
    order plus the folded incident and transport ledgers."""

    results: List[FleetResult]
    incidents: IncidentLog
    transport: Optional[object]  # merged TransportSummary, or None
    workers: int
    # Tasks re-run in-process after a worker death / broken pool.
    degraded_tasks: int = 0
    elapsed_seconds: float = 0.0
    # Cross-stack role-contract report (repro.analysis.AnalysisReport),
    # produced when lint_model is on and the tasks mixed stack kinds.
    contract: Optional[object] = None

    def fault_results(self) -> List[FleetResult]:
        return [r for r in self.results if r.task.kind == "fault"]

    def soak_results(self) -> List[FleetResult]:
        return [r for r in self.results if r.task.kind == "soak"]

    def fault_outcomes(
        self, stack_kind: Optional[str] = None, profile: object = "*"
    ) -> List[FaultOutcome]:
        """Fault-task outcomes, optionally filtered by stack and by the
        task-level transport profile (pass ``None`` for clean-channel
        tasks; the default ``"*"`` means any)."""
        return [
            r.outcome
            for r in self.fault_results()
            if (stack_kind is None or r.task.stack_kind == stack_kind)
            and (profile == "*" or r.task.profile == profile)
        ]

    def merged_soak(self) -> Optional[SoakOutcome]:
        merged = None
        for result in self.soak_results():
            if merged is None:
                merged = SoakOutcome()
            merged.absorb(result.soak)
        return merged

    @property
    def detected(self) -> int:
        return sum(1 for r in self.fault_results() if r.outcome.detected)


def build_fleet_tasks(
    stacks: Sequence[str] = ("pins", "cerberus"),
    profiles: Sequence[Optional[str]] = (None,),
    soak_profiles: Sequence[str] = (),
    config: Optional[CampaignConfig] = None,
) -> List[FleetTask]:
    """Expand behavioural faults × transport profiles × stack kinds (plus
    optional soak cycles) into the deterministic fleet task list."""
    config = config or CampaignConfig()
    tasks: List[FleetTask] = []
    for stack_kind in stacks:
        for profile in profiles:
            tasks.extend(
                FleetTask("fault", stack_kind, fault.name, profile=profile)
                for fault in faults_for_stack(stack_kind)
            )
        for profile in soak_profiles:
            tasks.extend(
                FleetTask("soak", stack_kind, profile=profile, cycle=cycle)
                for cycle in range(config.soak_cycles)
            )
    return tasks


# ----------------------------------------------------------------------
# Worker entry points (module-level: must be picklable)
# ----------------------------------------------------------------------
def _run_task(task: FleetTask, config: CampaignConfig) -> FleetResult:
    """Run one fleet task in the current process."""
    if task.kind == "soak":
        soak = run_soak_cycle(
            task.stack_kind, config, task.cycle, task.profile or "chaos"
        )
        return FleetResult(task=task, soak=soak)
    task_config = config
    if task.profile is not None:
        task_config = replace(config, fault_profile=task.profile)
    outcome = run_fault_campaign(task.fault_name, task.stack_kind, task_config)
    return FleetResult(task=task, outcome=outcome)


def _run_shard(
    shard: List[Tuple[int, FleetTask]], config: CampaignConfig
) -> List[Tuple[int, FleetResult]]:
    """Worker entry point: run one shard of (index, task) pairs."""
    if _FAULT_INJECT:
        os._exit(3)
    return [(index, _run_task(task, config)) for index, task in shard]


# ----------------------------------------------------------------------
# The fleet driver
# ----------------------------------------------------------------------
def run_fleet_campaign(
    stacks: Sequence[str] = ("pins", "cerberus"),
    config: Optional[CampaignConfig] = None,
    workers: int = 4,
    profiles: Sequence[Optional[str]] = (None,),
    soak_profiles: Sequence[str] = (),
    tasks: Optional[List[FleetTask]] = None,
) -> FleetReport:
    """Shard the fault catalogue across ``workers`` processes and merge.

    With ``workers=1`` this is behaviourally identical to calling
    :func:`repro.switchv.campaign.run_full_campaign` per stack (plus any
    soak cycles) — and with ``workers>1`` it still is, by the determinism
    contract in the module docstring; only the wall clock changes.
    """
    config = config or CampaignConfig()
    if tasks is None:
        tasks = build_fleet_tasks(stacks, profiles, soak_profiles, config)
    start = time.perf_counter()

    outcomes: Dict[int, FleetResult] = {}
    parallel = (
        workers > 1 and len(tasks) > 1 and "fork" in mp.get_all_start_methods()
    )
    if parallel:
        indexed = list(enumerate(tasks))
        shards = [indexed[k::workers] for k in range(workers)]
        shards = [shard for shard in shards if shard]
        try:
            with ProcessPoolExecutor(
                max_workers=len(shards), mp_context=mp.get_context("fork")
            ) as pool:
                futures = [pool.submit(_run_shard, shard, config) for shard in shards]
                for future in futures:
                    try:
                        solved = future.result()
                    except Exception:
                        continue  # shard lost; re-run in-process below
                    for index, result in solved:
                        outcomes[index] = result
        except Exception:
            pass  # pool never came up; everything re-run below

    unfinished = [index for index in range(len(tasks)) if index not in outcomes]
    degraded = len(unfinished) if parallel else 0
    for index in unfinished:
        outcomes[index] = _run_task(tasks[index], config)

    # Deterministic merge: fold ledgers in task order, never completion order.
    results = [outcomes[index] for index in range(len(tasks))]
    incidents = merge_incident_logs(
        r.outcome.incidents for r in results if r.outcome is not None
    )
    transport = merge_transport_summaries(
        r.outcome.transport for r in results if r.outcome is not None
    )
    contract = None
    if config.lint_model:
        contract = _contract_gate(tasks, incidents)
    return FleetReport(
        results=results,
        incidents=incidents,
        transport=transport,
        workers=max(1, workers),
        degraded_tasks=degraded,
        elapsed_seconds=time.perf_counter() - start,
        contract=contract,
    )


def _contract_gate(tasks: Sequence[FleetTask], incidents: IncidentLog):
    """Cross-stack contract pass for mixed-role fleets.

    A fleet mixing stack kinds is exactly the shared-controller scenario
    of §3: the same campaign code drives every role's model.  When the
    per-program lint gate is on, role-to-role API drift is gated the same
    way — every contract error becomes a MODEL_ERROR incident in the
    merged ledger.  Returns the contract AnalysisReport (None when the
    fleet ran a single stack kind: nothing to cross-check)."""
    kinds = sorted({t.stack_kind for t in tasks if t.stack_kind in STACK_PROGRAMS})
    if len(kinds) < 2:
        return None
    from repro.analysis import analyze_contract

    report = analyze_contract([STACK_PROGRAMS[kind]() for kind in kinds])
    for diag in report.errors:
        incidents.report(
            Incident(
                kind=IncidentKind.MODEL_ERROR,
                summary=f"contract[{diag.code}] {diag.location}: {diag.message}",
                expected="role instantiations agree on the shared API",
                observed=diag.message,
                source="repro-analysis",
                table_name=diag.table_name,
            )
        )
    return report
