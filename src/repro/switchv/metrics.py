"""Feature-progress metrics (§7 "Development Processes Using SwitchV").

The paper: "SwitchV ... provides a natural set of metrics to measure the
progress towards completing an OKR for some feature F.  For example, the
percentage of fuzzed table entries related to F that are correctly handled
by the switch, or the percentage of table entries related to F that produce
correct output packets when hit by test packets."

A *feature* here is a set of tables.  :func:`collect_feature_metrics` runs
a scaled SwitchV cycle and attributes control-plane handling and data-plane
correctness per feature, producing the tracking numbers a team would put on
a dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bmv2.entries import EntryDecodeError, decode_table_entry
from repro.fuzzer import FuzzerConfig, P4Fuzzer
from repro.fuzzer.feedback import CoverageProgress
from repro.p4.ast import P4Program
from repro.p4.p4info import build_p4info
from repro.p4rt.messages import TableEntry
from repro.switchv.harness import SwitchVHarness
from repro.switchv.report import Incident

# Default feature decomposition of the SAI-shaped models.
DEFAULT_FEATURES: Dict[str, Tuple[str, ...]] = {
    "routing": ("vrf_tbl", "ipv4_tbl", "ipv6_tbl"),
    "nexthop-resolution": ("nexthop_tbl", "neighbor_tbl", "router_interface_tbl"),
    "wcmp": ("wcmp_group_tbl",),
    "acl": ("acl_pre_ingress_tbl", "acl_ingress_tbl", "acl_egress_tbl", "l3_admit_tbl"),
    "mirroring": ("mirror_session_tbl",),
    "tunneling": ("tunnel_tbl", "decap_tbl"),
}


@dataclass
class FeatureMetrics:
    """The two §7 example metrics for one feature."""

    feature: str
    # Control plane: of the fuzzed updates touching this feature's tables,
    # how many were handled admissibly?
    control_updates: int = 0
    control_incidents: int = 0
    # Data plane: of the coverage goals over this feature's entries, how
    # many produced model-admissible behaviour?
    data_goals: int = 0
    data_incidents: int = 0

    @property
    def control_ok_ratio(self) -> Optional[float]:
        if self.control_updates == 0:
            return None
        return max(0.0, 1.0 - self.control_incidents / self.control_updates)

    @property
    def data_ok_ratio(self) -> Optional[float]:
        if self.data_goals == 0:
            return None
        # Deduplicated incidents can outnumber a small feature's entries
        # (several goal kinds reference the same table); clamp at zero.
        return max(0.0, 1.0 - self.data_incidents / self.data_goals)

    def row(self) -> Tuple[str, str, str]:
        def pct(ratio: Optional[float]) -> str:
            return "-" if ratio is None else f"{ratio:.0%}"

        return (self.feature, pct(self.control_ok_ratio), pct(self.data_ok_ratio))


def _feature_of(table_name: str, features: Mapping[str, Tuple[str, ...]]) -> Optional[str]:
    for feature, tables in features.items():
        if table_name in tables:
            return feature
    return None


def attribute_incident(
    incident: Incident, features: Mapping[str, Tuple[str, ...]]
) -> List[str]:
    """Every feature an incident belongs to, from its structured tables.

    Attribution reads :meth:`Incident.tables` (the table the oracle or
    harness recorded, plus any referenced tables), never summary
    substrings: ``"route"`` must not absorb an incident on
    ``"route_ext_tbl"``.  An incident touching tables of several features
    counts against each of them — no first-match ``break``.  Transport
    flakes attribute to nothing: availability is not a feature regression.
    """
    if incident.is_flake:
        return []
    implicated = incident.tables()
    return [
        feature
        for feature, tables in features.items()
        if any(t in tables for t in implicated)
    ]


def collect_feature_metrics(
    model: P4Program,
    switch,
    entries: Sequence[TableEntry],
    fuzzer_config: Optional[FuzzerConfig] = None,
    features: Optional[Mapping[str, Tuple[str, ...]]] = None,
) -> List[FeatureMetrics]:
    """Run a SwitchV cycle and attribute outcomes per feature."""
    features = dict(features or DEFAULT_FEATURES)
    p4info = build_p4info(model)
    table_names = {tid: t.name for tid, t in p4info.tables.items()}
    metrics = {name: FeatureMetrics(feature=name) for name in features}

    def feature_for_id(table_id: int) -> Optional[str]:
        name = table_names.get(table_id)
        return _feature_of(name, features) if name else None

    # Control plane: per-feature update counts from the fuzzer, incident
    # attribution by the table named in the incident input.
    harness = SwitchVHarness(model, switch)
    fuzzer = P4Fuzzer(p4info, switch, fuzzer_config or FuzzerConfig(num_writes=30))
    result = fuzzer.run()
    # Count updates by sampling the oracle's view: use mutation counters and
    # installed entries as the per-table denominator proxy is weak, so we
    # re-attribute from the campaign's own record instead.
    for entry in result.final_entries:
        feature = feature_for_id(entry.table_id)
        if feature:
            metrics[feature].control_updates += 1
    for incident in result.incidents:
        for feature in attribute_incident(incident, features):
            metrics[feature].control_incidents += 1

    # Data plane: entry-coverage goals grouped by the goal's table.
    harness.clear_switch()
    report = harness.validate_data_plane(entries)
    state = {}
    for entry in entries:
        try:
            decoded = decode_table_entry(p4info, entry)
        except EntryDecodeError:
            continue
        feature = _feature_of(decoded.table_name, features)
        if feature:
            metrics[feature].data_goals += 1
    for incident in report.incidents:
        for feature in attribute_incident(incident, features):
            metrics[feature].data_incidents += 1

    return [metrics[name] for name in features]


def render_metrics(metrics: Sequence[FeatureMetrics]) -> str:
    """A dashboard-style text table."""
    lines = [f"{'feature':22s} {'control-plane OK':>18s} {'data-plane OK':>15s}"]
    lines.append("-" * len(lines[0]))
    for metric in metrics:
        feature, control, data = metric.row()
        lines.append(f"{feature:22s} {control:>18s} {data:>15s}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Pipelined-campaign throughput metrics
# ----------------------------------------------------------------------
@dataclass
class PipelineThroughput:
    """One fuzz campaign's throughput under its write schedule.

    Modeled updates/second charges both the CPU the campaign spent and the
    transport wait its schedule would pay against a real switch at the
    injected latencies: per-RPC sums for the sequential loop, per-window
    makespans for the pipelined one.  That makes depth comparisons
    deterministic — no sleeping needed to show the overlap win.
    """

    depth: int = 1
    updates_sent: int = 0
    wall_seconds: float = 0.0
    transport_wait_seconds: float = 0.0
    max_in_flight: int = 1
    windows: int = 0
    conflict_stalls: int = 0
    read_backs: int = 0
    read_backs_coalesced: int = 0
    overlap_saved_s: float = 0.0

    @property
    def modeled_seconds(self) -> float:
        return self.wall_seconds + self.transport_wait_seconds

    @property
    def modeled_updates_per_second(self) -> float:
        if self.modeled_seconds == 0:
            return 0.0
        return self.updates_sent / self.modeled_seconds


def collect_pipeline_throughput(result) -> PipelineThroughput:
    """Fold a FuzzResult (sequential or pipelined) into throughput metrics."""
    metrics = PipelineThroughput(
        updates_sent=result.updates_sent,
        wall_seconds=result.elapsed_seconds,
        transport_wait_seconds=result.transport_wait_seconds,
    )
    stats = result.pipeline
    if stats is not None:
        metrics.depth = stats.depth
        metrics.max_in_flight = stats.max_in_flight
        metrics.windows = stats.windows
        metrics.conflict_stalls = stats.conflict_stalls
        metrics.read_backs = stats.read_backs
        metrics.read_backs_coalesced = stats.read_backs_coalesced
        metrics.overlap_saved_s = stats.overlap_saved_s
    return metrics


# ----------------------------------------------------------------------
# Generation-effort (clause economy) metrics
# ----------------------------------------------------------------------
def collect_generation_effort(report) -> Dict[str, float]:
    """Flat solver/CNF effort counters from one validation run.

    Takes a :class:`repro.switchv.harness.ValidationReport` (duck-typed
    like the other collectors) and reads its ``data_plane`` stats.  These
    are the clause-economy numbers the ``cnf-kernel`` benchmark tables
    report: emitted SAT variables and clauses, structurally shared gates,
    and the propagation/conflict effort behind the queries — what makes a
    speedup attributable to the encoding rather than wall-clock noise.
    Returns zeros when the run had no data-plane phase.
    """
    stats = getattr(report, "data_plane", None) or report
    return {
        "goals_total": getattr(stats, "goals_total", 0),
        "goals_covered": getattr(stats, "goals_covered", 0),
        "solver_queries": getattr(stats, "solver_queries", 0),
        "sat_conflicts": getattr(stats, "sat_conflicts", 0),
        "sat_decisions": getattr(stats, "sat_decisions", 0),
        "sat_propagations": getattr(stats, "sat_propagations", 0),
        "cnf_vars": getattr(stats, "cnf_vars", 0),
        "cnf_clauses": getattr(stats, "cnf_clauses", 0),
        "gates_shared": getattr(stats, "gates_shared", 0),
        "generation_seconds": getattr(stats, "generation_seconds", 0.0),
    }


# ----------------------------------------------------------------------
# Coverage-feedback progress metrics
# ----------------------------------------------------------------------
def collect_coverage_progress(result) -> Optional[CoverageProgress]:
    """The coverage series a fuzz run recorded, or None when coverage
    tracking was off.  Takes a :class:`repro.fuzzer.fuzzer.FuzzResult`
    (duck-typed for symmetry with the other collectors); the samples are
    (cumulative updates, distinct trace keys covered) pairs — the curve a
    dashboard plots to show a campaign is still unlocking behaviour."""
    return getattr(result, "coverage", None)


def merge_coverage_progress(
    progresses: Sequence[Optional[CoverageProgress]],
) -> Optional[CoverageProgress]:
    """Fold per-shard coverage series into one fleet-level summary.

    Covered keys union (they are stable across processes — that is the
    point of the structural goal digest), counters and timings sum, and
    the sample curve concatenates in the given order with each shard's
    update axis offset by the totals before it, so the merged curve stays
    monotone in updates.  Returns None when no shard tracked coverage."""
    merged: Optional[CoverageProgress] = None
    offset = 0
    for progress in progresses:
        if progress is None:
            continue
        if merged is None:
            merged = CoverageProgress()
        covered = set(merged.covered_keys)
        covered.update(progress.covered_keys)
        merged.covered_keys = sorted(covered)
        merged.samples.extend(
            (offset + updates, keys) for updates, keys in progress.samples
        )
        offset += progress.samples[-1][0] if progress.samples else 0
        merged.corpus_size += progress.corpus_size
        merged.batches_scored += progress.batches_scored
        merged.batches_skipped += progress.batches_skipped
        merged.score_seconds += progress.score_seconds
        for table, gain in progress.table_gains.items():
            merged.table_gains[table] = merged.table_gains.get(table, 0) + gain
    return merged
