"""The trivial integration test suite of §6.2.

Six traditional hand-crafted tests, executed in sequence:

1. **Set P4Info** — push the P4Info configuration to the switch.
2. **Table entry programming** — install a rule in every table, including
   an ACL entry that punts packets to the controller and an IPv4 route.
3. **Read all tables** — read everything back and compare.
4. **Packet-in** — send a packet matching the punt rule; expect it on the
   packet-io channel.
5. **Packet-out** — send a packet via packet-out for each port; expect it
   in the data plane.
6. **Packet forwarding** — send an IPv4 packet matching the route; expect
   correct forwarding.

Table 2 of the paper asks, for each bug, which of these (run in order)
would have found it; :func:`run_trivial_suite` reports the first failing
test, which the Table 2 benchmark aggregates across the fault catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bmv2.packet import deparse_packet, make_ipv4_packet
from repro.fuzzer.batching import make_batches
from repro.p4.ast import P4Program
from repro.p4.p4info import build_p4info
from repro.p4rt.messages import ReadRequest, Update, UpdateType, WriteRequest
from repro.workloads.entries import PUNT_CANARY_IP, baseline_entries

# Canonical test names, in execution order (Table 2 rows).
TRIVIAL_TESTS = (
    "set_p4info",
    "table_entry_programming",
    "read_all_tables",
    "packet_in",
    "packet_out",
    "packet_forwarding",
)


@dataclass
class TrivialSuiteResult:
    passed: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)  # test -> reason

    @property
    def first_failure(self) -> Optional[str]:
        for name in TRIVIAL_TESTS:
            if name in self.failed:
                return name
        return None

    @property
    def all_passed(self) -> bool:
        return not self.failed


def run_trivial_suite(
    model: P4Program,
    switch,
    ports: Sequence[int] = (1, 2, 3, 4),
    stop_at_first_failure: bool = False,
) -> TrivialSuiteResult:
    """Execute the six tests in order against a fresh switch."""
    result = TrivialSuiteResult()
    p4info = build_p4info(model)

    def record(name: str, reason: Optional[str]) -> bool:
        if reason is None:
            result.passed.append(name)
            return True
        result.failed[name] = reason
        return False

    # 1. Set P4Info.
    status = switch.set_forwarding_pipeline_config(p4info)
    ok = record("set_p4info", None if status.ok else f"{status.code.name}: {status.message}")
    if not ok and stop_at_first_failure:
        return result

    # 2. Table entry programming.
    entries = baseline_entries(p4info, ports=ports)
    failure = None
    for batch in make_batches(p4info, [Update(UpdateType.INSERT, e) for e in entries]):
        response = switch.write(WriteRequest(updates=tuple(batch)))
        for update, st in zip(batch, response.statuses, strict=False):
            if not st.ok and failure is None:
                failure = (
                    f"insert into table 0x{update.entry.table_id:08x} failed: "
                    f"{st.code.name}: {st.message}"
                )
    ok = record("table_entry_programming", failure)
    if not ok and stop_at_first_failure:
        return result

    # 3. Read all tables.
    read = switch.read(ReadRequest(table_id=0))
    expected = {e.match_key() for e in entries}
    observed = {e.match_key() for e in read.entries}
    failure = None
    if expected - observed:
        failure = f"{len(expected - observed)} installed entries missing from read"
    elif observed - expected:
        failure = f"{len(observed - expected)} unexpected entries in read"
    ok = record("read_all_tables", failure)
    if not ok and stop_at_first_failure:
        return result

    # 4. Packet-in: the canary IP is punted by the baseline ACL entry.
    switch.drain_packet_ins()  # discard anything stale
    canary = make_ipv4_packet(dst_addr=PUNT_CANARY_IP, src_addr=PUNT_CANARY_IP)
    switch.send_packet(deparse_packet(canary), ingress_port=ports[0])
    packet_ins = switch.drain_packet_ins()
    failure = None if packet_ins else "no packet-in received for the punt canary"
    ok = record("packet_in", failure)
    if not ok and stop_at_first_failure:
        return result

    # 5. Packet-out on every port.
    from repro.p4rt.messages import PacketOut

    failure = None
    probe = deparse_packet(make_ipv4_packet(dst_addr=0x0B000001))
    for port in ports:
        status = switch.packet_out(PacketOut(payload=probe, egress_port=port))
        if not status.ok and failure is None:
            failure = f"packet-out on port {port} failed: {status.code.name}"
    egress = switch.drain_egress() if hasattr(switch, "drain_egress") else []
    sent_ports = {port for port, _payload in egress}
    if failure is None and not set(ports).issubset(sent_ports):
        failure = f"packet-out reached ports {sorted(sent_ports)}, wanted {list(ports)}"
    # Packet-out must not bounce back to the controller.
    bounced = switch.drain_packet_ins()
    if failure is None and bounced:
        failure = f"{len(bounced)} packet-out packet(s) punted back to the controller"
    ok = record("packet_out", failure)
    if not ok and stop_at_first_failure:
        return result

    # 6. Packet forwarding along the installed 10.1.0.0/16 route.
    packet = make_ipv4_packet(dst_addr=0x0A010101, ttl=64)  # 10.1.1.1
    observed_fwd = switch.send_packet(deparse_packet(packet), ingress_port=ports[1])
    failure = None
    if observed_fwd.egress_port != ports[0]:
        failure = (
            f"10.1.1.1 should forward via nexthop 1 (port {ports[0]}), "
            f"observed {observed_fwd.egress_port}"
        )
    elif observed_fwd.packet.get("ipv4.ttl") != 63:
        failure = f"TTL not decremented: {observed_fwd.packet.get('ipv4.ttl')}"
    record("packet_forwarding", failure)
    switch.drain_packet_ins()
    return result
