"""Incident reporting.

When SwitchV deems a switch behaviour invalid it "produces a log of the
incident" for a human to root-cause (§2).  An :class:`Incident` captures
what was being tested, what was expected (the admissible set), and what was
observed; an :class:`IncidentLog` collects and deduplicates them per run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class IncidentKind(enum.Enum):
    """The category of disagreement, used for triage and dedup."""

    # Control plane
    INVALID_REQUEST_ACCEPTED = "invalid request accepted"
    VALID_REQUEST_REJECTED = "valid request rejected"
    WRONG_ERROR_CODE = "wrong error code"
    READBACK_MISMATCH = "read-back disagrees with expected state"
    PIPELINE_CONFIG = "pipeline config handling"
    SWITCH_UNRESPONSIVE = "switch crashed or became unresponsive"
    # Data plane
    FORWARDING_MISMATCH = "forwarding behavior not admitted by model"
    UNEXPECTED_PACKET_IN = "unexpected packet punted to controller"
    UNEXPECTED_EGRESS = "unexpected packet emitted on data port"
    PACKET_IO = "packet-io misbehavior"


@dataclass
class Incident:
    """One observed divergence between the switch and the P4 model."""

    kind: IncidentKind
    summary: str
    # Free-form context for the human root-causing the issue.
    expected: str = ""
    observed: str = ""
    test_input: str = ""
    source: str = ""  # "p4-fuzzer" | "p4-symbolic" | "trivial-suite"

    def dedup_key(self) -> Tuple:
        return (self.kind, self.summary)

    def __repr__(self) -> str:
        return f"Incident({self.source}, {self.kind.value}: {self.summary})"


def render_generation_stats(stats) -> str:
    """Human-facing packet-generation effort summary.

    Takes a :class:`repro.switchv.harness.DataPlaneStats` (duck-typed to
    avoid a circular import) and renders where the generation time went:
    goal outcomes, cache effectiveness, and the aggregate SAT-solver effort
    (conflicts/decisions/propagations) that makes a benchmark regression
    attributable to the solver rather than to orchestration.
    """
    lines = [
        "packet generation:",
        f"    goals:        {stats.goals_covered}/{stats.goals_total} covered"
        f" ({stats.goals_from_cache} from cache)",
        f"    wall clock:   {stats.generation_seconds:.2f}s"
        f" ({stats.workers} worker(s){', whole-run cache hit' if stats.cache_hit else ''})",
        f"    solver:       {stats.solver_queries} queries,"
        f" {stats.sat_conflicts} conflicts,"
        f" {stats.sat_decisions} decisions,"
        f" {stats.sat_propagations} propagations",
    ]
    return "\n".join(lines)


@dataclass
class IncidentLog:
    """A run's incidents, deduplicated by (kind, summary)."""

    incidents: List[Incident] = field(default_factory=list)
    _seen: set = field(default_factory=set)

    def report(self, incident: Incident) -> None:
        key = incident.dedup_key()
        if key in self._seen:
            return
        self._seen.add(key)
        self.incidents.append(incident)

    def extend(self, other: "IncidentLog") -> None:
        for incident in other.incidents:
            self.report(incident)

    @property
    def count(self) -> int:
        return len(self.incidents)

    def by_kind(self) -> Dict[IncidentKind, int]:
        out: Dict[IncidentKind, int] = {}
        for incident in self.incidents:
            out[incident.kind] = out.get(incident.kind, 0) + 1
        return out

    def by_source(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for incident in self.incidents:
            out[incident.source] = out.get(incident.source, 0) + 1
        return out

    def summary_lines(self) -> List[str]:
        return [repr(incident) for incident in self.incidents]

    def __bool__(self) -> bool:
        return bool(self.incidents)

    def __iter__(self):
        return iter(self.incidents)

    def render(self) -> str:
        """The human-facing incident log (§2: testers inspect this to
        identify the root cause)."""
        if not self.incidents:
            return "no incidents: switch behaviour matched the model.\n"
        lines = [f"{self.count} incident(s):", ""]
        for index, incident in enumerate(self.incidents, start=1):
            lines.append(f"[{index}] {incident.kind.value}  (found by {incident.source})")
            lines.append(f"    summary:  {incident.summary}")
            if incident.expected:
                lines.append(f"    expected: {incident.expected}")
            if incident.observed:
                lines.append(f"    observed: {incident.observed}")
            if incident.test_input:
                lines.append(f"    input:    {incident.test_input}")
            lines.append("")
        return "\n".join(lines)
