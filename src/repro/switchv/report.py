"""Incident reporting.

When SwitchV deems a switch behaviour invalid it "produces a log of the
incident" for a human to root-cause (§2).  An :class:`Incident` captures
what was being tested, what was expected (the admissible set), and what was
observed; an :class:`IncidentLog` collects and deduplicates them per run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Tuple


class IncidentKind(enum.Enum):
    """The category of disagreement, used for triage and dedup."""

    # Control plane
    INVALID_REQUEST_ACCEPTED = "invalid request accepted"
    VALID_REQUEST_REJECTED = "valid request rejected"
    WRONG_ERROR_CODE = "wrong error code"
    READBACK_MISMATCH = "read-back disagrees with expected state"
    PIPELINE_CONFIG = "pipeline config handling"
    SWITCH_UNRESPONSIVE = "switch crashed or became unresponsive"
    # Model artefacts (a bug in the model itself, e.g. a malformed
    # @entry_restriction that would silently disable constraint checking).
    MODEL_ERROR = "malformed model artifact"
    # Transport availability (not a model divergence): a dropped or
    # ambiguous RPC the retry layer could not fully absorb.
    TRANSPORT_FLAKE = "transport flake (dropped or ambiguous RPC)"
    # Data plane
    FORWARDING_MISMATCH = "forwarding behavior not admitted by model"
    UNEXPECTED_PACKET_IN = "unexpected packet punted to controller"
    UNEXPECTED_EGRESS = "unexpected packet emitted on data port"
    PACKET_IO = "packet-io misbehavior"


# Availability kinds: the switch (or its transport) was *unreachable or
# flaky*, which is a different triage queue from a model divergence.
# Reports and metrics count these separately from model incidents.
TRANSPORT_KINDS = frozenset(
    {IncidentKind.SWITCH_UNRESPONSIVE, IncidentKind.TRANSPORT_FLAKE}
)


@dataclass
class Incident:
    """One observed divergence between the switch and the P4 model."""

    kind: IncidentKind
    summary: str
    # Free-form context for the human root-causing the issue.
    expected: str = ""
    observed: str = ""
    test_input: str = ""
    source: str = ""  # "p4-fuzzer" | "p4-symbolic" | "trivial-suite"
    # Structured attribution: the table the incident is about (empty when
    # no single table applies, e.g. a pipeline-config failure), plus any
    # other tables implicated (e.g. the target of a dangling reference).
    # Feature metrics attribute from these, never from summary substrings.
    table_id: int = 0
    table_name: str = ""
    related_tables: Tuple[str, ...] = ()

    @property
    def is_flake(self) -> bool:
        return self.kind in TRANSPORT_KINDS

    def tables(self) -> Tuple[str, ...]:
        """Every table this incident implicates, primary first."""
        if self.table_name:
            return (self.table_name,) + tuple(
                t for t in self.related_tables if t != self.table_name
            )
        return tuple(self.related_tables)

    def dedup_key(self) -> Tuple:
        return (self.kind, self.summary)

    def __repr__(self) -> str:
        return f"Incident({self.source}, {self.kind.value}: {self.summary})"


def render_generation_stats(stats) -> str:
    """Human-facing packet-generation effort summary.

    Takes a :class:`repro.switchv.harness.DataPlaneStats` (duck-typed to
    avoid a circular import) and renders where the generation time went:
    goal outcomes, cache effectiveness, and the aggregate SAT-solver effort
    (conflicts/decisions/propagations) that makes a benchmark regression
    attributable to the solver rather than to orchestration.
    """
    lines = [
        "packet generation:",
        f"    goals:        {stats.goals_covered}/{stats.goals_total} covered"
        f" ({stats.goals_from_cache} from cache,"
        f" {getattr(stats, 'goals_subsumed', 0)} subsumed)",
        f"    wall clock:   {stats.generation_seconds:.2f}s"
        f" ({stats.workers} worker(s){', whole-run cache hit' if stats.cache_hit else ''})",
        f"    solver:       {stats.solver_queries} queries,"
        f" {stats.sat_conflicts} conflicts,"
        f" {stats.sat_decisions} decisions,"
        f" {stats.sat_propagations} propagations",
        f"    cnf:          {getattr(stats, 'cnf_clauses', 0)} clauses /"
        f" {getattr(stats, 'cnf_vars', 0)} vars emitted,"
        f" {getattr(stats, 'gates_shared', 0)} gates shared",
    ]
    return "\n".join(lines)


def render_diagnostics(report) -> str:
    """Human-facing rendering of one model-lint run.

    Takes a :class:`repro.analysis.AnalysisReport` (duck-typed to avoid a
    circular import) and renders it the way the incident log renders
    divergences: errors first, then warnings, one fix-hint per finding.
    This is what the ``python -m repro.analysis`` CLI prints and what the
    harness logs before refusing to start a campaign."""
    errors = report.errors
    warnings = report.warnings
    scope = "structural+semantic" if report.semantic_ran else "structural only"
    lines = [
        f"model lint: {report.program_name} ({scope}): "
        f"{len(errors)} error(s), {len(warnings)} warning(s)"
    ]
    for diag in list(errors) + list(warnings):
        lines.append(f"  {diag.severity.value}[{diag.code}] {diag.location}")
        lines.append(f"      {diag.message}")
        if diag.fix_hint:
            lines.append(f"      fix: {diag.fix_hint}")
        witness = getattr(diag, "witness", None)
        if witness is not None:
            lines.extend(witness.render())
    if not report.diagnostics:
        lines.append("  clean: the model is usable as a specification")
    summary = getattr(report, "summary", None)
    if summary:
        parts = ", ".join(
            f"{key.replace('_', ' ')} {value}"
            for key, value in sorted(summary.items())
        )
        lines.append(f"  summary: {parts}")
    return "\n".join(lines)


def diagnostics_to_json(report) -> Dict:
    """The machine-facing twin of :func:`render_diagnostics`.

    A plain-dict rendering of one :class:`repro.analysis.AnalysisReport`
    (duck-typed), stable under ``json.dumps(..., sort_keys=True)`` — the
    CI lint-model job uploads this as an artifact and diffs runs byte for
    byte, so everything here must be deterministically ordered (the report
    is sorted by the analyzer) and free of wall-clock noise (timings are
    deliberately excluded)."""
    return {
        "program": report.program_name,
        "semantic_ran": report.semantic_ran,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "summary": dict(getattr(report, "summary", {}) or {}),
        "diagnostics": [
            {
                "code": diag.code,
                "severity": diag.severity.value,
                "location": diag.location,
                "message": diag.message,
                "fix_hint": diag.fix_hint,
                "table": diag.table_name,
                "witness": (
                    diag.witness.to_json()
                    if getattr(diag, "witness", None) is not None
                    else None
                ),
            }
            for diag in report
        ],
    }


def render_transport_stats(transport) -> str:
    """Human-facing retry/timeout/reconnect summary for one campaign.

    Takes a :class:`repro.fuzzer.fuzzer.TransportSummary` (duck-typed to
    avoid a circular import).  These counters are the flake ledger the
    acceptance criteria require to be reported *separately* from model
    incidents: a noisy transport with zero model incidents is a healthy
    switch behind a bad cable, not a bug."""
    lines = [
        "transport:",
        f"    retries:      {transport.retries}"
        f" ({transport.deadline_exceeded} deadline misses,"
        f" {transport.reconnects} reconnects)",
        f"    ambiguity:    {transport.ambiguous_batches} ambiguous batch(es),"
        f" {transport.resyncs} oracle resync(s),"
        f" {transport.idempotent_rescues} idempotent rescue(s)",
        f"    flakes:       {transport.flakes} abandoned RPC(s)",
    ]
    return "\n".join(lines)


def render_pipeline_stats(result) -> str:
    """Human-facing pipelined-campaign summary.

    Takes a :class:`repro.fuzzer.fuzzer.FuzzResult` (duck-typed to avoid a
    circular import) and renders the windowed scheduler's work: in-flight
    depth, coalesced read-backs, and the modeled throughput that charges
    both CPU and the schedule's transport wait."""
    lines = [
        "pipeline:",
        f"    throughput:   {result.modeled_updates_per_second:.0f} updates/s modeled"
        f" ({result.updates_sent} updates,"
        f" {result.elapsed_seconds:.2f}s cpu"
        f" + {result.transport_wait_seconds:.2f}s transport wait)",
    ]
    stats = result.pipeline
    if stats is None:
        lines.append("    schedule:     sequential (one batch in flight)")
        return "\n".join(lines)
    lines.append(
        f"    in flight:    depth {stats.depth},"
        f" peak {stats.max_in_flight},"
        f" {stats.windows} window(s),"
        f" {stats.conflict_stalls} conflict stall(s)"
    )
    lines.append(
        f"    read-backs:   {stats.read_backs} taken,"
        f" {stats.read_backs_coalesced} coalesced away"
    )
    lines.append(
        f"    overlap:      {stats.overlap_saved_s:.2f}s transport wait saved"
        f" ({stats.overlapped_generation_s:.2f}s generation overlapped)"
    )
    return "\n".join(lines)


def render_coverage_progress(progress) -> str:
    """Human-facing coverage-feedback summary for one fuzz campaign.

    Takes a :class:`repro.fuzzer.feedback.CoverageProgress` (duck-typed to
    avoid a circular import) and renders the greybox loop's yield: the
    coverage curve endpoints, the key-kind breakdown, corpus/scoring
    effort, and the tables where feedback found the most new behaviour."""
    kinds = progress.by_kind()
    breakdown = ", ".join(f"{kinds[k]} {k}" for k in sorted(kinds)) or "none"
    lines = [
        "coverage feedback:",
        f"    trace keys:   {progress.covered} covered ({breakdown})",
    ]
    if progress.samples:
        first_updates, first_keys = progress.samples[0]
        last_updates, last_keys = progress.samples[-1]
        lines.append(
            f"    curve:        {first_keys} keys @ {first_updates} updates"
            f" -> {last_keys} keys @ {last_updates} updates"
        )
    lines.append(
        f"    scoring:      {progress.batches_scored} batch(es) scored,"
        f" {progress.batches_skipped} skipped (unchanged state),"
        f" {progress.score_seconds:.2f}s"
    )
    lines.append(f"    corpus:       {progress.corpus_size} coverage-increasing batch(es)")
    if progress.table_gains:
        top = sorted(progress.table_gains.items(), key=lambda kv: (-kv[1], kv[0]))[:4]
        lines.append(
            "    hot tables:   "
            + ", ".join(f"{name} (+{gain})" for name, gain in top)
        )
    return "\n".join(lines)


@dataclass
class IncidentLog:
    """A run's incidents, deduplicated by (kind, summary)."""

    incidents: List[Incident] = field(default_factory=list)
    _seen: set = field(default_factory=set)

    def report(self, incident: Incident) -> None:
        key = incident.dedup_key()
        if key in self._seen:
            return
        self._seen.add(key)
        self.incidents.append(incident)

    def extend(self, other: "IncidentLog") -> None:
        for incident in other.incidents:
            self.report(incident)

    @property
    def count(self) -> int:
        return len(self.incidents)

    # ------------------------------------------------------------------
    # Model-incident / transport-flake separation
    # ------------------------------------------------------------------
    def model_only(self) -> "IncidentLog":
        """The incidents that indicate a model/switch divergence (flakes
        and unresponsiveness are an availability problem, not a verdict)."""
        out = IncidentLog()
        for incident in self.incidents:
            if not incident.is_flake:
                out.report(incident)
        return out

    def flakes_only(self) -> "IncidentLog":
        out = IncidentLog()
        for incident in self.incidents:
            if incident.is_flake:
                out.report(incident)
        return out

    @property
    def model_count(self) -> int:
        return sum(1 for i in self.incidents if not i.is_flake)

    @property
    def flake_count(self) -> int:
        return sum(1 for i in self.incidents if i.is_flake)

    def by_kind(self) -> Dict[IncidentKind, int]:
        out: Dict[IncidentKind, int] = {}
        for incident in self.incidents:
            out[incident.kind] = out.get(incident.kind, 0) + 1
        return out

    def by_source(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for incident in self.incidents:
            out[incident.source] = out.get(incident.source, 0) + 1
        return out

    def summary_lines(self) -> List[str]:
        return [repr(incident) for incident in self.incidents]

    def __bool__(self) -> bool:
        return bool(self.incidents)

    def __iter__(self):
        return iter(self.incidents)

    def merged(self, others: Iterable["IncidentLog"]) -> "IncidentLog":
        """A new log holding this log's incidents plus the others', in
        order, deduplicated by the usual (kind, summary) key."""
        out = IncidentLog()
        out.extend(self)
        for other in others:
            out.extend(other)
        return out

    def render(self) -> str:
        """The human-facing incident log (§2: testers inspect this to
        identify the root cause).  Transport/availability incidents are
        listed in their own section: they route to the infra on-call, not
        to the switch-vs-model triage queue."""
        if not self.incidents:
            return "no incidents: switch behaviour matched the model.\n"

        def blocks(incidents, start):
            out = []
            for index, incident in enumerate(incidents, start=start):
                out.append(f"[{index}] {incident.kind.value}  (found by {incident.source})")
                out.append(f"    summary:  {incident.summary}")
                if incident.expected:
                    out.append(f"    expected: {incident.expected}")
                if incident.observed:
                    out.append(f"    observed: {incident.observed}")
                if incident.test_input:
                    out.append(f"    input:    {incident.test_input}")
                out.append("")
            return out

        model = [i for i in self.incidents if not i.is_flake]
        flakes = [i for i in self.incidents if i.is_flake]
        lines = [f"{self.count} incident(s):", ""]
        lines.extend(blocks(model, start=1))
        if flakes:
            lines.append(
                f"{len(flakes)} transport/availability incident(s) "
                "(not model divergences):"
            )
            lines.append("")
            lines.extend(blocks(flakes, start=len(model) + 1))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fleet ledger merging + rendering
# ----------------------------------------------------------------------
def merge_incident_logs(logs: Iterable[IncidentLog]) -> IncidentLog:
    """Fold per-worker incident logs into one, preserving the given order
    (callers pass logs in deterministic task order) and deduplicating by
    the usual (kind, summary) key."""
    out = IncidentLog()
    for log in logs:
        if log is not None:
            out.extend(log)
    return out


def merge_transport_summaries(summaries):
    """Sum per-worker transport ledgers into one summary of the same type.

    Duck-typed over :class:`repro.fuzzer.fuzzer.TransportSummary` (any
    dataclass of numeric counters works) to keep this module free of a
    fuzzer import.  Returns ``None`` when no ledger was recorded at all."""
    merged = None
    for summary in summaries:
        if summary is None:
            continue
        if merged is None:
            merged = type(summary)()
        for f in fields(summary):
            setattr(merged, f.name, getattr(merged, f.name) + getattr(summary, f.name))
    return merged


def render_fleet_report(report) -> str:
    """Human-facing summary of one fleet campaign.

    Takes a :class:`repro.switchv.fleet.FleetReport` (duck-typed to avoid
    a circular import): the sharding headline, the per-stack detection
    table, the soak ledger when soak tasks ran, and the merged transport
    ledger."""
    degraded = (
        f", {report.degraded_tasks} task(s) re-run in-process after worker loss"
        if report.degraded_tasks
        else ""
    )
    lines = [
        f"fleet campaign: {len(report.results)} task(s) across "
        f"{report.workers} worker process(es) in {report.elapsed_seconds:.1f}s"
        f"{degraded}",
    ]
    by_stack: Dict[str, List] = {}
    for result in report.fault_results():
        by_stack.setdefault(result.task.stack_kind, []).append(result)
    for stack_kind in sorted(by_stack):
        results = by_stack[stack_kind]
        detected = sum(1 for r in results if r.outcome.detected)
        lines.append(f"  {stack_kind}: detected {detected}/{len(results)}")
        for result in results:
            outcome = result.outcome
            tools = "+".join(outcome.detected_by) if outcome.detected else "NOT DETECTED"
            profile = f" [{result.task.profile}]" if result.task.profile else ""
            lines.append(f"    {outcome.fault.name:38s}{profile} {tools}")
    soaks = report.soak_results()
    if soaks:
        merged = None
        for result in soaks:
            if merged is None:
                merged = type(result.soak)()
            merged.absorb(result.soak)
        verdict = "ok" if merged.ok else (
            f"{merged.phantom_cycles} phantom cycle(s), "
            f"{merged.state_divergences} state divergence(s)"
        )
        lines.append(
            f"  soak: {merged.cycles} cycle(s), {merged.faults_injected} fault(s) "
            f"injected, {verdict}"
        )
    if report.transport is not None and report.transport.any_activity:
        lines.append(render_transport_stats(report.transport))
    return "\n".join(lines)
