"""Fault-injection campaigns: the machinery behind Tables 1–2 and Figure 7.

A campaign takes one fault from the catalogue, builds the appropriate
switch stack with that fault enabled (including model transforms for
input-P4-program bugs and simulator flags for BMv2 bugs), runs SwitchV
(p4-fuzzer + p4-symbolic, §6's nightly configuration scaled down), and the
trivial test suite (§6.2), and records what detected it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.fuzzer import FuzzerConfig
from repro.p4.ast import P4Program
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_cerberus_program, build_tor_program
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switch.faults import FAULTS_BY_NAME, Fault, faults_for_stack
from repro.switch.model_faults import apply_model_faults
from repro.switchv.harness import SwitchVHarness
from repro.switchv.report import IncidentLog
from repro.switchv.trivial import run_trivial_suite
from repro.workloads import production_like_entries

# Which builder models which stack.
STACK_PROGRAMS: Dict[str, Callable[[], P4Program]] = {
    "pins": build_tor_program,
    "cerberus": build_cerberus_program,
}


@dataclass
class FaultOutcome:
    """What one fault's campaign produced."""

    fault: Fault
    detected: bool
    detected_by: List[str] = field(default_factory=list)  # tools that flagged it
    incident_count: int = 0
    trivial_first_failure: Optional[str] = None  # §6.2 attribution
    incidents: Optional[IncidentLog] = None


@dataclass
class CampaignConfig:
    """Scaled-down nightly run parameters (fast enough for CI)."""

    fuzz_writes: int = 25
    fuzz_updates_per_write: int = 25
    workload_entries: int = 90
    seed: int = 11
    run_trivial: bool = True
    # Packet-generation parallelism (workers=1 is the sequential path).
    workers: int = 1


def run_fault_campaign(
    fault_name: str, stack_kind: str, config: Optional[CampaignConfig] = None
) -> FaultOutcome:
    """Run SwitchV (and the trivial suite) against one seeded fault."""
    config = config or CampaignConfig()
    fault = FAULTS_BY_NAME[fault_name]
    build = STACK_PROGRAMS[stack_kind]

    true_program = build()
    # Model-category faults hand SwitchV a wrong model of a correct switch;
    # everything else faults the switch itself.
    model = apply_model_faults(true_program, [fault_name])
    registry = FaultRegistry([fault_name])
    stack = PinsSwitchStack(true_program, faults=registry)
    harness = SwitchVHarness(
        model, stack, simulator_faults=registry, workers=config.workers
    )

    entries = production_like_entries(
        build_p4info(model), total=config.workload_entries, seed=config.seed
    )
    report = harness.validate(
        entries,
        FuzzerConfig(
            num_writes=config.fuzz_writes,
            updates_per_write=config.fuzz_updates_per_write,
            seed=config.seed,
        ),
    )

    outcome = FaultOutcome(
        fault=fault,
        detected=bool(report.incidents),
        incident_count=report.incidents.count,
        incidents=report.incidents,
    )
    outcome.detected_by = sorted(report.incidents.by_source())

    if config.run_trivial:
        trivial_stack = PinsSwitchStack(build(), faults=FaultRegistry([fault_name]))
        trivial = run_trivial_suite(model, trivial_stack)
        outcome.trivial_first_failure = trivial.first_failure
    return outcome


def run_full_campaign(
    stack_kind: str, config: Optional[CampaignConfig] = None
) -> List[FaultOutcome]:
    """Run the whole catalogue for one stack ('pins' or 'cerberus')."""
    return [
        run_fault_campaign(fault.name, stack_kind, config)
        for fault in faults_for_stack(stack_kind)
        if stack_kind == "pins" or fault.stack == "cerberus"
    ]
