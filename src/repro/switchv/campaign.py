"""Fault-injection campaigns: the machinery behind Tables 1–2 and Figure 7.

A campaign takes one fault from the catalogue, builds the appropriate
switch stack with that fault enabled (including model transforms for
input-P4-program bugs and simulator flags for BMv2 bugs), runs SwitchV
(p4-fuzzer + p4-symbolic, §6's nightly configuration scaled down), and the
trivial test suite (§6.2), and records what detected it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional

from repro.fuzzer import FuzzerConfig, P4Fuzzer, TransportSummary
from repro.p4.ast import P4Program
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_cerberus_program, build_tor_program
from repro.p4rt.retry import RetryPolicy, build_resilient_client
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switch.faults import FAULTS_BY_NAME, Fault, faults_for_stack
from repro.switch.model_faults import apply_model_faults
from repro.switchv.harness import SwitchVHarness
from repro.switchv.report import IncidentLog
from repro.switchv.trivial import run_trivial_suite
from repro.workloads import production_like_entries

# Which builder models which stack.
STACK_PROGRAMS: Dict[str, Callable[[], P4Program]] = {
    "pins": build_tor_program,
    "cerberus": build_cerberus_program,
}


@dataclass
class FaultOutcome:
    """What one fault's campaign produced."""

    fault: Fault
    detected: bool
    detected_by: List[str] = field(default_factory=list)  # tools that flagged it
    incident_count: int = 0
    trivial_first_failure: Optional[str] = None  # §6.2 attribution
    incidents: Optional[IncidentLog] = None
    # Retry/timeout/reconnect ledger when a transport fault profile was on.
    transport: Optional[TransportSummary] = None


@dataclass
class CampaignConfig:
    """Scaled-down nightly run parameters (fast enough for CI)."""

    fuzz_writes: int = 25
    fuzz_updates_per_write: int = 25
    workload_entries: int = 90
    seed: int = 11
    run_trivial: bool = True
    # Packet-generation parallelism (workers=1 is the sequential path).
    workers: int = 1
    # Transport-availability testing: a FaultProfile (or catalogue name
    # from repro.p4rt.channel.PROFILES) injected between SwitchV and the
    # stack, plus the retry policy that absorbs it.  None = clean channel.
    fault_profile: Optional[object] = None
    retry_policy: Optional[RetryPolicy] = None
    # Soak mode: how many fuzz cycles run_soak_campaign executes.
    soak_cycles: int = 3
    # Fuzzing-loop pipelining: keep up to this many independent batches in
    # flight per window (repro.fuzzer.pipeline).  1 = sequential loop.
    pipeline_depth: int = 1
    # Fail-fast gate: lint the model before the campaign starts; a model
    # with error-severity diagnostics yields MODEL_ERROR incidents and no
    # fuzzing/replay happens (repro.analysis).
    lint_model: bool = False
    # Cross-state incremental solving: keep one SolverPool alive for the
    # whole campaign so successive table states reuse bit-blasting, learned
    # clauses, and solved-formula results (repro.smt.pool).  Verdicts and
    # packets are byte-identical either way; False rebuilds solvers per
    # state (the pre-pool behaviour).
    reuse_solvers: bool = True
    # Greybox coverage feedback for the fuzz phase (repro.fuzzer.feedback):
    # per-batch trace-key scoring plus uncovered-region biasing.  Fleet
    # workers inherit this through the pickled CampaignConfig.
    coverage_guided: bool = False


@dataclass
class CampaignSetup:
    """One fault campaign's constructed components.

    Construction is factored out of :func:`run_fault_campaign` so fleet
    workers (:mod:`repro.switchv.fleet`) can ship only picklable inputs —
    ``(fault_name, stack_kind, config)`` — across the process boundary and
    build the stack/harness on their side of the fork."""

    fault: Fault
    stack_kind: str
    model: P4Program
    harness: SwitchVHarness
    config: CampaignConfig


def build_campaign(
    fault_name: str, stack_kind: str, config: Optional[CampaignConfig] = None
) -> CampaignSetup:
    """Build the faulted stack + harness for one catalogue fault."""
    config = config or CampaignConfig()
    fault = FAULTS_BY_NAME[fault_name]
    build = STACK_PROGRAMS[stack_kind]

    true_program = build()
    # Model-category faults hand SwitchV a wrong model of a correct switch;
    # everything else faults the switch itself.
    model = apply_model_faults(true_program, [fault_name])
    registry = FaultRegistry([fault_name])
    stack = PinsSwitchStack(true_program, faults=registry)
    harness = SwitchVHarness(
        model,
        stack,
        simulator_faults=registry,
        workers=config.workers,
        fault_profile=config.fault_profile,
        retry_policy=config.retry_policy,
        lint_model=config.lint_model,
        pipeline_depth=config.pipeline_depth,
        reuse_solvers=config.reuse_solvers,
        coverage_guided=config.coverage_guided,
    )
    return CampaignSetup(
        fault=fault, stack_kind=stack_kind, model=model, harness=harness, config=config
    )


def run_fault_campaign(
    fault_name: str, stack_kind: str, config: Optional[CampaignConfig] = None
) -> FaultOutcome:
    """Run SwitchV (and the trivial suite) against one seeded fault."""
    setup = build_campaign(fault_name, stack_kind, config)
    fault, model, harness, config = setup.fault, setup.model, setup.harness, setup.config

    if harness.p4info is None:
        # The lint gate refused the model: the "campaign" is just the
        # findings, reported through the same incident pipeline.
        report = harness.validate_control_plane()
        return FaultOutcome(
            fault=fault,
            detected=bool(report.incidents),
            detected_by=sorted(report.incidents.by_source()),
            incident_count=report.incidents.count,
            incidents=report.incidents,
        )

    entries = production_like_entries(
        build_p4info(model), total=config.workload_entries, seed=config.seed
    )
    report = harness.validate(
        entries,
        FuzzerConfig(
            num_writes=config.fuzz_writes,
            updates_per_write=config.fuzz_updates_per_write,
            seed=config.seed,
            pipeline_depth=config.pipeline_depth,
            coverage_guided=config.coverage_guided,
        ),
    )

    outcome = FaultOutcome(
        fault=fault,
        detected=bool(report.incidents),
        incident_count=report.incidents.count,
        incidents=report.incidents,
        transport=report.fuzz.transport if report.fuzz is not None else None,
    )
    outcome.detected_by = sorted(report.incidents.by_source())

    if config.run_trivial:
        trivial_stack = PinsSwitchStack(
            STACK_PROGRAMS[setup.stack_kind](), faults=FaultRegistry([fault_name])
        )
        trivial = run_trivial_suite(model, trivial_stack)
        outcome.trivial_first_failure = trivial.first_failure
    return outcome


def run_full_campaign(
    stack_kind: str, config: Optional[CampaignConfig] = None
) -> List[FaultOutcome]:
    """Run the whole catalogue for one stack ('pins' or 'cerberus')."""
    # faults_for_stack already partitions the catalogue by stack
    # (tests/test_fault_mechanics.py::test_stack_partition).
    return [
        run_fault_campaign(fault.name, stack_kind, config)
        for fault in faults_for_stack(stack_kind)
    ]


# ----------------------------------------------------------------------
# Soak mode: repeated fuzz cycles under transport faults
# ----------------------------------------------------------------------
@dataclass
class SoakOutcome:
    """N fuzz cycles against a healthy switch behind a faulty transport.

    The pass criterion is *zero phantoms*: every cycle's model-incident
    set and final switch state must match a fault-free run of the same
    seed.  The transport counters prove the faults actually fired."""

    cycles: int = 0
    # Cycles whose model incidents differed from the fault-free baseline
    # (phantoms or misses caused by the transport layer — must be 0).
    phantom_cycles: int = 0
    # Cycles whose final switch state diverged from the baseline's.
    state_divergences: int = 0
    model_incidents: int = 0
    flakes: int = 0
    retries: int = 0
    ambiguous_batches: int = 0
    resyncs: int = 0
    reconnects: int = 0
    faults_injected: int = 0

    @property
    def ok(self) -> bool:
        return self.phantom_cycles == 0 and self.state_divergences == 0

    def absorb(self, other: "SoakOutcome") -> None:
        """Fold another outcome's counters in (fleet/per-cycle merge)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


def _fuzz_cycle(stack_kind: str, config: CampaignConfig, seed: int, fault_profile):
    """One fuzz-only cycle against a healthy stack; returns (result, channel)."""
    program = STACK_PROGRAMS[stack_kind]()
    p4info = build_p4info(program)
    stack = PinsSwitchStack(program)
    channel = None
    switch = stack
    if fault_profile is not None:
        from repro.p4rt.channel import FaultInjectingChannel, resolve_profile

        channel = FaultInjectingChannel(stack, resolve_profile(fault_profile, seed))
        switch = channel
    client = build_resilient_client(switch, retry_policy=config.retry_policy)
    fuzzer = P4Fuzzer(
        p4info,
        client,
        FuzzerConfig(
            num_writes=config.fuzz_writes,
            updates_per_write=config.fuzz_updates_per_write,
            seed=seed,
            pipeline_depth=config.pipeline_depth,
            coverage_guided=config.coverage_guided,
        ),
        model=program,
    )
    return fuzzer.run(), channel


def run_soak_cycle(
    stack_kind: str,
    config: Optional[CampaignConfig] = None,
    cycle: int = 0,
    fault_profile="chaos",
) -> SoakOutcome:
    """One soak cycle (seed = config.seed + cycle) as a one-cycle outcome.

    Each cycle is self-contained — its own baseline and faulty run — so
    cycles shard cleanly across fleet workers and merge with
    :meth:`SoakOutcome.absorb`."""
    config = config or CampaignConfig()
    seed = config.seed + cycle
    baseline, _ = _fuzz_cycle(stack_kind, config, seed, fault_profile=None)
    faulty, channel = _fuzz_cycle(stack_kind, config, seed, fault_profile)

    outcome = SoakOutcome(cycles=1)
    base_keys = {i.dedup_key() for i in baseline.incidents.model_only()}
    soak_keys = {i.dedup_key() for i in faulty.incidents.model_only()}
    if base_keys != soak_keys:
        outcome.phantom_cycles += 1
    base_state = {e.match_key() for e in baseline.final_entries}
    soak_state = {e.match_key() for e in faulty.final_entries}
    if base_state != soak_state:
        outcome.state_divergences += 1

    outcome.model_incidents += faulty.incidents.model_count
    outcome.flakes += faulty.transport.flakes
    outcome.retries += faulty.transport.retries
    outcome.ambiguous_batches += faulty.transport.ambiguous_batches
    outcome.resyncs += faulty.transport.resyncs
    outcome.reconnects += faulty.transport.reconnects
    if channel is not None:
        outcome.faults_injected += channel.stats.faults_injected
    return outcome


def run_soak_campaign(
    stack_kind: str,
    config: Optional[CampaignConfig] = None,
    fault_profile="chaos",
) -> SoakOutcome:
    """Soak the validation loop: N cycles under transport faults, each
    checked against a fault-free run of the same seed (no phantoms, same
    final state).  This is the acceptance gate for the transport layer."""
    config = config or CampaignConfig()
    outcome = SoakOutcome()
    for cycle in range(config.soak_cycles):
        outcome.absorb(run_soak_cycle(stack_kind, config, cycle, fault_profile))
    return outcome
