#!/usr/bin/env python3
"""The nightly run + OKR dashboard (§7 "Development Processes").

The paper recommends running SwitchV "periodically and frequently (e.g.
nightly)" and using its results as OKR metrics: the share of fuzzed
entries per feature handled correctly, and the share of entries producing
correct packets.  This example plays one nightly cycle for a switch
mid-development (two seeded bugs open) and prints the dashboard a team
would track.

Run:  python examples/nightly_dashboard.py
"""

from repro.fuzzer import FuzzerConfig
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switchv.metrics import collect_feature_metrics, render_metrics
from repro.workloads import production_like_entries


def nightly(label: str, faults) -> None:
    model = build_tor_program()
    p4info = build_p4info(model)
    switch = PinsSwitchStack(model, faults=FaultRegistry(faults))
    entries = production_like_entries(p4info, total=100, seed=42)
    metrics = collect_feature_metrics(
        model,
        switch,
        entries,
        FuzzerConfig(num_writes=25, updates_per_write=25, seed=42),
    )
    print(f"== nightly run: {label} ==")
    print(render_metrics(metrics))
    print()


def main() -> None:
    # Sprint day 1: the ACL naming bug and the WCMP update bug are open.
    nightly(
        "sprint day 1 (two bugs open)",
        ["acl_name_capitalization", "wcmp_update_removes_members"],
    )
    # Sprint day 5: the ACL fix landed; WCMP still open.
    nightly("sprint day 5 (ACL fixed)", ["wcmp_update_removes_members"])
    # Sprint day 9: all green — ready for DVT.
    nightly("sprint day 9 (all fixed)", [])


if __name__ == "__main__":
    main()
