#!/usr/bin/env python3
"""Fleet campaign: the whole fault catalogue, sharded across workers.

Expands behavioural faults × transport profiles × stack kinds into one
task list, shards it round-robin across parallel worker processes (each
running an isolated fault campaign or soak cycle), and merges the
per-worker FaultOutcomes, incident logs, and transport ledgers into a
single deterministic report — the nightly §6 configuration, wall-clock
bound by the slowest shard instead of the sum of the catalogue.

Run:  python examples/fleet_campaign.py [workers] [profile ...]

  workers   worker process count (default 4)
  profile   extra transport profiles to cross with the catalogue
            (names from repro.p4rt.channel.PROFILES, e.g. drop_response)
"""

import sys
import time

from repro.switchv.campaign import CampaignConfig, run_full_campaign
from repro.switchv.fleet import run_fleet_campaign
from repro.switchv.report import render_fleet_report


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    profiles = [None, *sys.argv[2:]]
    config = CampaignConfig(
        fuzz_writes=10, fuzz_updates_per_write=20, workload_entries=60, seed=11,
        run_trivial=False,
    )

    print("sequential baseline (pins + cerberus) ...")
    start = time.perf_counter()
    sequential = [
        outcome
        for stack in ("pins", "cerberus")
        for outcome in run_full_campaign(stack, config)
    ]
    sequential_s = time.perf_counter() - start
    print(f"  {len(sequential)} campaigns in {sequential_s:.1f}s\n")

    print(f"fleet run ({workers} workers, profiles={[p or 'clean' for p in profiles]}) ...")
    report = run_fleet_campaign(
        config=config, workers=workers, profiles=profiles, soak_profiles=("chaos",)
    )
    print(render_fleet_report(report))

    # The acceptance bar: the clean-channel shard of the fleet reproduces
    # the sequential run verdict-for-verdict.
    clean = report.fault_outcomes(profile=None)
    agree = sum(
        1
        for seq, par in zip(sequential, clean, strict=True)
        if seq.detected == par.detected
        and {i.dedup_key() for i in seq.incidents}
        == {i.dedup_key() for i in par.incidents}
    )
    print(f"\nequivalence vs sequential: {agree}/{len(sequential)} campaigns identical")
    if sequential_s and report.elapsed_seconds:
        print(f"wall clock: {sequential_s:.1f}s sequential -> "
              f"{report.elapsed_seconds:.1f}s fleet "
              f"({sequential_s / report.elapsed_seconds:.2f}x, note the fleet "
              f"also ran {len(report.results) - len(clean)} extra task(s))")


if __name__ == "__main__":
    main()
