#!/usr/bin/env python3
"""The controller side of the contract (Figure 1).

The P4 model is not just SwitchV's specification — it is the contract an
SDN controller programs against.  This example drives the mini controller:
it compiles route intents into P4Runtime entries, installs them with the
same @refers_to-aware batching the paper describes (§3 "Batching Table
Entries"), audits the switch state, and then verifies packets actually
follow the intents — on the very switch stack SwitchV validates.

Run:  python examples/controller_fabric.py
"""

from repro.bmv2.packet import deparse_packet, make_ipv4_packet
from repro.controller import Controller, RouteIntent
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.switch import PinsSwitchStack


def main() -> None:
    program = build_tor_program()
    p4info = build_p4info(program)
    switch = PinsSwitchStack(program)

    controller = Controller(p4info, switch)
    status = controller.connect()
    print(f"pipeline config push: {status!r}")

    intents = [
        RouteIntent(prefix=0x0A640000, prefix_len=16, port=2),  # 10.100/16 -> 2
        RouteIntent(prefix=0x0A650000, prefix_len=16, port=3),  # 10.101/16 -> 3
        RouteIntent(prefix=0x0A650100, prefix_len=24, port=4),  # 10.101.1/24 -> 4
    ]
    result = controller.install_fabric(ports=[1, 2, 3, 4], routes=intents)
    print(f"programmed {result.accepted} entries "
          f"({len(result.rejected)} rejected)")
    assert result.ok, result.rejected

    print(f"shadow state audit: {'consistent' if controller.audit() else 'DIVERGED'}")

    probes = [
        (0x0A640001, 2, "10.100.0.1 follows the /16 to port 2"),
        (0x0A657F7F, 3, "10.101.127.127 follows the /16 to port 3"),
        (0x0A650105, 4, "10.101.1.5 follows the more-specific /24 to port 4"),
    ]
    print("\nforwarding checks:")
    for dst, expected_port, label in probes:
        observed = switch.send_packet(
            deparse_packet(make_ipv4_packet(dst_addr=dst)), ingress_port=1
        )
        verdict = "ok" if observed.egress_port == expected_port else "WRONG"
        print(f"  {label}: egress {observed.egress_port} [{verdict}]")
        assert observed.egress_port == expected_port

    # Tear the fabric down again; referential integrity forces the right
    # order (routes before next hops before RIFs), which withdraw() handles.
    result = controller.withdraw(list(controller.shadow.values()))
    print(f"\nwithdrawn {result.accepted} entries; "
          f"audit: {'consistent' if controller.audit() else 'DIVERGED'}")
    assert result.ok and controller.audit()


if __name__ == "__main__":
    main()
