#!/usr/bin/env python3
"""The P4 text *is* the specification.

The models under ``p4src/`` are rendered P4 source — the "living
documentation" of §3.  This example loads ``p4src/sai_tor.p4`` with the
textual parser, shows that the parsed program exposes the identical
control-plane contract as the programmatic builder, and then runs a full
SwitchV validation driven purely by the text file.

Run:  python examples/p4_text_models.py
"""

from pathlib import Path

from repro.fuzzer import FuzzerConfig
from repro.p4.p4info import build_p4info
from repro.p4.parser import parse_program
from repro.p4.printer import print_program
from repro.p4.programs import build_tor_program
from repro.switch import PinsSwitchStack
from repro.switchv import SwitchVHarness
from repro.workloads import production_like_entries


def main() -> None:
    source_path = Path(__file__).resolve().parent.parent / "p4src" / "sai_tor.p4"
    source = source_path.read_text()
    print(f"loaded {source_path.name}: {len(source.splitlines())} lines of P4")

    model = parse_program(source)
    built = build_tor_program()
    parsed_fp = build_p4info(model).fingerprint()
    built_fp = build_p4info(built).fingerprint()
    print(f"contract fingerprint (text):    {parsed_fp[:16]}")
    print(f"contract fingerprint (builder): {built_fp[:16]}")
    assert parsed_fp == built_fp, "the text and the builder must agree"

    # Round trip: printing the parsed program reproduces the file.
    assert print_program(model) == source
    print("print(parse(text)) == text: the file is canonical")

    # Validate a switch using only the parsed text as the specification.
    switch = PinsSwitchStack(built)
    harness = SwitchVHarness(model, switch)
    entries = production_like_entries(build_p4info(model), total=80, seed=5)
    report = harness.validate(entries, FuzzerConfig(num_writes=15, updates_per_write=20, seed=5))
    print(f"SwitchV (text-driven): {report.incidents.count} incidents "
          f"across {report.fuzz.updates_sent} updates and "
          f"{report.data_plane.packets_tested} packets")
    assert report.ok


if __name__ == "__main__":
    main()
