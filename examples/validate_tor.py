#!/usr/bin/env python3
"""End-to-end validation of a PINS ToR switch (the nightly run of §6).

Builds the SAI-shaped ToR model ("Inst1"), brings up the full layered PINS
stack (P4Runtime server → OrchAgent → SyncD → SAI → ASIC, plus the Linux
host environment), loads a production-like forwarding state, and runs the
complete SwitchV cycle:

  1. p4-fuzzer control-plane campaign with oracle judging and read-backs;
  2. churned-state data-plane replay (the §7 extension);
  3. fresh-state data-plane validation with entry coverage, special-packet
     goals, packet-io audits, and the update-path sweep.

Run:  python examples/validate_tor.py [entries] [seed]
"""

import sys
import time

from repro.fuzzer import FuzzerConfig
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.switch import PinsSwitchStack
from repro.switchv import SwitchVHarness
from repro.symbolic.cache import PacketCache
from repro.workloads import production_like_entries


def main() -> None:
    total_entries = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11

    model = build_tor_program()
    p4info = build_p4info(model)
    print(f"model: {model.name} (role {model.role}), "
          f"{len(model.tables())} tables, "
          f"{len(p4info.actions)} actions, fingerprint {p4info.fingerprint()[:12]}")

    switch = PinsSwitchStack(model)
    harness = SwitchVHarness(model, switch, cache=PacketCache())
    entries = production_like_entries(p4info, total=total_entries, seed=seed)
    print(f"workload: {len(entries)} production-like entries (seed {seed})")

    start = time.perf_counter()
    report = harness.validate(
        entries,
        FuzzerConfig(num_writes=50, updates_per_write=30, seed=seed),
    )
    elapsed = time.perf_counter() - start

    fuzz = report.fuzz
    print("\n-- control plane (p4-fuzzer) --")
    print(f"updates sent:      {fuzz.updates_sent}")
    print(f"valid / invalid:   {fuzz.valid_updates} / {fuzz.invalid_updates}")
    print(f"throughput:        {fuzz.updates_per_second:.0f} updates/s")
    top_mutations = sorted(fuzz.mutation_counts.items(), key=lambda kv: -kv[1])[:5]
    print(f"top mutations:     {', '.join(f'{k}×{v}' for k, v in top_mutations)}")

    dp = report.data_plane
    print("\n-- data plane (p4-symbolic) --")
    print(f"coverage goals:    {dp.goals_covered}/{dp.goals_total}")
    print(f"test packets:      {dp.packets_tested}")
    print(f"generation:        {dp.generation_seconds:.1f}s "
          f"({'cache hit' if dp.cache_hit else 'cold'})")
    print(f"testing:           {dp.testing_seconds:.1f}s")

    print(f"\n-- verdict ({elapsed:.1f}s total) --")
    if report.ok:
        print("no incidents: the switch conforms to the model.")
    else:
        print(f"{report.incidents.count} incident(s):")
        for incident in report.incidents:
            print(f"  - [{incident.source}] {incident.kind.value}: {incident.summary}")
    assert report.ok, "a fault-free stack must validate cleanly"


if __name__ == "__main__":
    main()
