#!/usr/bin/env python3
"""Bug-hunt campaign: seed the Appendix-A bug catalogue and let SwitchV hunt.

For each implemented fault, builds a switch with that fault enabled (model
bugs transform the model instead; simulator bugs flip BMv2 flags), runs
SwitchV, and reports what found it — the live machinery behind the Table 1
benchmark.  Also runs the §6.2 trivial test suite for the Table 2 contrast:
watch how many catalogue bugs the six traditional tests miss.

Run:  python examples/bug_hunt_campaign.py [pins|cerberus]
"""

import sys
import time
from collections import Counter

from repro.switch.faults import faults_for_stack
from repro.switchv.campaign import CampaignConfig, run_fault_campaign


def main() -> None:
    stack_kind = sys.argv[1] if len(sys.argv) > 1 else "pins"
    config = CampaignConfig(
        fuzz_writes=20, fuzz_updates_per_write=25, workload_entries=80, seed=11
    )
    faults = faults_for_stack(stack_kind)
    print(f"hunting {len(faults)} seeded bugs in the {stack_kind} stack\n")
    print(f"{'fault':38s} {'component':22s} {'found by':22s} {'trivial suite'}")
    print("-" * 104)

    by_component = Counter()
    by_tool = Counter()
    trivially_found = 0
    start = time.perf_counter()
    for fault in faults:
        outcome = run_fault_campaign(fault.name, stack_kind, config)
        tools = "+".join(outcome.detected_by) if outcome.detected else "NOT DETECTED"
        trivial = outcome.trivial_first_failure or "-"
        if outcome.trivial_first_failure:
            trivially_found += 1
        print(f"{fault.name:38s} {fault.component:22s} {tools:22s} {trivial}")
        if outcome.detected:
            by_component[fault.component] += 1
            for tool in outcome.detected_by:
                by_tool[tool] += 1

    print("-" * 104)
    print(f"\ndetected {sum(by_component.values())}/{len(faults)} "
          f"in {time.perf_counter() - start:.0f}s")
    print("by component:", dict(by_component))
    print("by tool:", dict(by_tool))
    print(f"trivial suite would find {trivially_found}/{len(faults)} "
          f"({trivially_found / len(faults):.0%}) — the paper reports 51% for "
          "PINS and 22% for Cerberus")


if __name__ == "__main__":
    main()
