#!/usr/bin/env python3
"""Quickstart: validate a switch against a P4 model in ~60 lines.

Builds the toy router model (the paper's Figure 2 fragment), programs a
reference switch through P4Runtime, and runs both SwitchV components:
p4-fuzzer against the control-plane API and p4-symbolic against the data
plane.  Then it hands SwitchV a *wrong* model and watches it find the
divergence.

Run:  python examples/quickstart.py
"""

from repro.fuzzer import FuzzerConfig
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_toy_program
from repro.switch import ReferenceSwitch
from repro.switch.model_faults import apply_model_faults
from repro.switchv import SwitchVHarness
from repro.workloads import EntryBuilder


def forwarding_state(p4info):
    """A tiny forwarding state: VRF 1 and two routes."""
    b = EntryBuilder(p4info)
    return [
        b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
        b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8,
              "set_nexthop_id", {"nexthop_id": 3}),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A010000, 16,
              "set_nexthop_id", {"nexthop_id": 7}),
    ]


def main() -> None:
    model = build_toy_program()
    p4info = build_p4info(model)

    print("== 1. Validating a correct switch against the correct model ==")
    switch = ReferenceSwitch(model)
    harness = SwitchVHarness(model, switch)
    report = harness.validate(
        forwarding_state(p4info),
        FuzzerConfig(num_writes=20, updates_per_write=20, seed=1),
    )
    fuzz = report.fuzz
    print(f"p4-fuzzer: {fuzz.updates_sent} updates "
          f"({fuzz.valid_updates} valid / {fuzz.invalid_updates} invalid), "
          f"{fuzz.updates_per_second:.0f} updates/s")
    dp = report.data_plane
    print(f"p4-symbolic: {dp.packets_tested} test packets covering "
          f"{dp.goals_covered}/{dp.goals_total} goals "
          f"(generation {dp.generation_seconds:.2f}s)")
    print(f"incidents: {report.incidents.count} (expected: 0)\n")
    assert report.ok

    print("== 2. Validating the same switch against a WRONG model ==")
    # Hand SwitchV a model whose set_nexthop_id action is mis-specified
    # (it claims everything egresses on port 1).  The switch is unchanged;
    # the divergence is a bug in the *model* — the paper found 18 of those.
    from dataclasses import replace

    from repro.p4.ast import Const
    from repro.p4.programs.toy import ACTION_SET_NEXTHOP_PORT

    wrong_body = (
        ACTION_SET_NEXTHOP_PORT.body[0],
        # The wrong model believes set_nexthop_id forwards everything out
        # of port 1 regardless of the argument.
        replace(ACTION_SET_NEXTHOP_PORT.body[1], value=Const(1, 16)),
    )
    wrong_action = replace(ACTION_SET_NEXTHOP_PORT, body=wrong_body)

    def swap_action(table):
        from repro.p4.ast import ActionRef

        if table.name != "ipv4_tbl":
            return table
        refs = tuple(
            ActionRef(wrong_action) if ref.action.name == "set_nexthop_id" else ref
            for ref in table.actions
        )
        return replace(table, actions=refs)

    from repro.switch.model_faults import _map_tables

    wrong_model = replace(model, ingress=_map_tables(model.ingress, swap_action))

    harness2 = SwitchVHarness(wrong_model, ReferenceSwitch(model))
    report2 = harness2.validate_data_plane(forwarding_state(p4info))
    print(f"incidents: {report2.incidents.count} (expected: > 0)")
    for incident in list(report2.incidents)[:3]:
        print(f"  - [{incident.source}] {incident.kind.value}: {incident.summary}")
    assert not report2.ok
    print("\nSwitchV found the model/switch divergence. Done.")


if __name__ == "__main__":
    main()
