#!/usr/bin/env python3
"""p4-symbolic deep dive: coverage modes, trace goals, and caching.

Shows the machinery of §5 directly, without the harness:

  * symbolic execution of the ToR model over every parser profile;
  * entry vs branch coverage goal counts and generation cost;
  * a selected-trace goal (the paper's "practical middle ground between
    branch and trace coverage");
  * goal caching (§6.3) — the second run looks its packets up.

Run:  python examples/symbolic_coverage.py
"""

import time

from repro.bmv2.entries import decode_table_entry
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.symbolic import PacketGenerator, SymbolicExecutor
from repro.symbolic.cache import PacketCache, cache_key
from repro.symbolic.coverage import CoverageMode, trace_goal
from repro.workloads import production_like_entries


def decode_state(p4info, entries):
    state = {}
    for entry in entries:
        decoded = decode_table_entry(p4info, entry)
        state.setdefault(decoded.table_name, []).append(decoded)
    return state


def main() -> None:
    program = build_tor_program()
    p4info = build_p4info(program)
    entries = production_like_entries(p4info, total=60, seed=2)
    state = decode_state(p4info, entries)

    print("== symbolic execution ==")
    executions = SymbolicExecutor(program, state).execute()
    for execution in executions:
        entry_keys = sum(1 for k in execution.trace if k[0] == "entry")
        branch_keys = sum(1 for k in execution.trace if k[0] == "branch")
        print(f"  profile {execution.profile.name:16s}: "
              f"{entry_keys} entry guards, {branch_keys} branch guards")

    print("\n== coverage modes ==")
    for mode in (CoverageMode.ENTRY, CoverageMode.BRANCH):
        start = time.perf_counter()
        result = PacketGenerator(program, state).generate(mode)
        print(f"  {mode.value:6s}: {result.stats.goals_covered}/"
              f"{result.stats.goals_total} goals covered, "
              f"{result.stats.solver_queries} SMT queries, "
              f"{time.perf_counter() - start:.1f}s")
        if mode is CoverageMode.ENTRY and result.uncovered:
            print(f"          unreachable: {', '.join(result.uncovered[:4])} ...")

    print("\n== selected-trace goal ==")
    # Require one packet that traverses the VRF table AND a specific route
    # in the same execution — a trace combination, not a single construct.
    vrf_entry = state["vrf_tbl"][0]
    route_entry = state["ipv4_tbl"][0]
    goal = trace_goal(
        "vrf1-and-first-route",
        [
            ("entry", "vrf_tbl", vrf_entry.identity()),
            ("entry", "ipv4_tbl", route_entry.identity()),
        ],
    )
    result = PacketGenerator(program, state).generate(
        CoverageMode.CUSTOM, custom_goals=[goal]
    )
    for packet in result.packets:
        dst = packet.packet.get("ipv4.dst_addr", 0)
        print(f"  witness packet: profile {packet.profile}, "
              f"dst {dst >> 24 & 255}.{dst >> 16 & 255}.{dst >> 8 & 255}.{dst & 255}, "
              f"port {packet.ingress_port}")

    print("\n== caching (§6.3) ==")
    cache = PacketCache()
    key = cache_key(program, state, CoverageMode.ENTRY, (1, 2, 3, 4, 5, 6, 7, 8))
    start = time.perf_counter()
    cold = PacketGenerator(program, state).generate(CoverageMode.ENTRY)
    cold_time = time.perf_counter() - start
    cache.store(key, cold)
    start = time.perf_counter()
    warm = cache.lookup(key)
    warm_time = time.perf_counter() - start
    print(f"  cold generation: {cold_time:.2f}s for {len(cold.packets)} packets")
    print(f"  cache lookup:    {warm_time * 1000:.2f}ms (hit={warm.stats.cache_hit})")


if __name__ == "__main__":
    main()
