// P4 model: toy_router (role: toy)
@role("toy")
@parser("ethernet_ipv4_ipv6")

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<6> dscp;
    bit<2> ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> header_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_t {
    bit<4> version;
    bit<6> dscp;
    bit<2> ecn;
    bit<20> flow_label;
    bit<16> payload_length;
    bit<8> next_header;
    bit<8> hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
}

header icmp_t {
    bit<8> type;
    bit<8> code;
    bit<16> checksum;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4> data_offset;
    bit<4> res;
    bit<8> flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> hdr_length;
    bit<16> checksum;
}

struct metadata_t {
    bit<16> vrf_id;
    bit<16> nexthop_id;
    bit<16> wcmp_group_id;
    bit<16> router_interface_id;
    bit<16> neighbor_id;
    bit<1> l3_admit;
    bit<1> is_ipv4;
    bit<1> is_ipv6;
    bit<16> mirror_session_id;
    bit<1> route_hit;
}

control toy_router_ingress(inout headers_t headers,
                                inout metadata_t meta) {
    action set_vrf(@refers_to(vrf_tbl, vrf_id) bit<16> vrf_id) {
        meta.vrf_id = vrf_id;
    }
    action NoAction() {
    }
    action drop() {
        standard.drop = 1w1;
    }
    action set_nexthop_id(bit<16> nexthop_id) {
        meta.nexthop_id = nexthop_id;
        standard.egress_port = nexthop_id;
    }
    table pre_ingress_tbl {
        key = {
            standard.ingress_port : optional @name("in_port");
        }
        actions = { set_vrf };
        const default_action = NoAction;
        size = 16;
    }
    @entry_restriction("vrf_id != 0")
    @resource_table
    table vrf_tbl {
        key = {
            meta.vrf_id : exact @name("vrf_id");
        }
        actions = { NoAction };
        const default_action = NoAction;
        size = 16;
    }
    table ipv4_tbl {
        key = {
            meta.vrf_id : exact @name("vrf_id") @refers_to(vrf_tbl, vrf_id);
            ipv4.dst_addr : lpm @name("ipv4_dst");
        }
        actions = { drop, set_nexthop_id };
        const default_action = drop;
        size = 32;
    }
    apply {
        pre_ingress_tbl.apply();
        vrf_tbl.apply();
        if @label("ipv4_gate") (ipv4.isValid()) {
            ipv4_tbl.apply();
        }
    }
}
