// P4 model: sai_tor (role: ToR)
@role("ToR")
@parser("ethernet_ipv4_ipv6")

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<6> dscp;
    bit<2> ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> header_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_t {
    bit<4> version;
    bit<6> dscp;
    bit<2> ecn;
    bit<20> flow_label;
    bit<16> payload_length;
    bit<8> next_header;
    bit<8> hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
}

header icmp_t {
    bit<8> type;
    bit<8> code;
    bit<16> checksum;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4> data_offset;
    bit<4> res;
    bit<8> flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> hdr_length;
    bit<16> checksum;
}

struct metadata_t {
    bit<16> vrf_id;
    bit<16> nexthop_id;
    bit<16> wcmp_group_id;
    bit<16> router_interface_id;
    bit<16> neighbor_id;
    bit<1> l3_admit;
    bit<1> is_ipv4;
    bit<1> is_ipv6;
    bit<16> mirror_session_id;
    bit<1> route_hit;
}

control sai_tor_ingress(inout headers_t headers,
                                inout metadata_t meta) {
    action admit_to_l3() {
        meta.l3_admit = 1w1;
    }
    action NoAction() {
    }
    action set_vrf(@refers_to(vrf_tbl, vrf_id) bit<16> vrf_id) {
        meta.vrf_id = vrf_id;
    }
    action drop() {
        standard.drop = 1w1;
    }
    action set_nexthop_id(@refers_to(nexthop_tbl, nexthop_id) bit<16> nexthop_id) {
        meta.nexthop_id = nexthop_id;
        meta.route_hit = 1w1;
    }
    action set_wcmp_group_id(@refers_to(wcmp_group_tbl, wcmp_group_id) bit<16> wcmp_group_id) {
        meta.wcmp_group_id = wcmp_group_id;
        meta.route_hit = 1w1;
    }
    action trap() {
        standard.punt = 1w1;
        standard.drop = 1w1;
    }
    action set_ip_nexthop(@refers_to(router_interface_tbl, router_interface_id) @refers_to(neighbor_tbl, router_interface_id) bit<16> router_interface_id, @refers_to(neighbor_tbl, neighbor_id) bit<16> neighbor_id) {
        meta.router_interface_id = router_interface_id;
        meta.neighbor_id = neighbor_id;
    }
    action set_dst_mac(bit<48> dst_mac) {
        ethernet.dst_addr = dst_mac;
    }
    action set_port_and_src_mac(bit<16> port, bit<48> src_mac) {
        standard.egress_port = port;
        ethernet.src_addr = src_mac;
    }
    action acl_copy() {
        standard.punt = 1w1;
    }
    action acl_mirror(@refers_to(mirror_session_tbl, mirror_session_id) bit<16> mirror_session_id) {
        meta.mirror_session_id = mirror_session_id;
    }
    action set_mirror_port(bit<16> port) {
        standard.mirror_port = port;
    }
    action set_clone_session(bit<16> session_id) {
        standard.mirror_session = session_id;
    }
    table l3_admit_tbl {
        key = {
            ethernet.dst_addr : ternary @name("dst_mac");
            standard.ingress_port : optional @name("in_port");
        }
        actions = { admit_to_l3 };
        const default_action = NoAction;
        size = 128;
    }
    @entry_restriction("dst_ip::mask != 0 -> is_ipv4 == 1")
    table acl_pre_ingress_tbl {
        key = {
            ethernet.src_addr : ternary @name("src_mac");
            ipv4.dst_addr : ternary @name("dst_ip");
            meta.is_ipv4 : optional @name("is_ipv4");
            standard.ingress_port : optional @name("in_port");
        }
        actions = { set_vrf };
        const default_action = NoAction;
        size = 128;
    }
    @entry_restriction("vrf_id != 0")
    @resource_table
    table vrf_tbl {
        key = {
            meta.vrf_id : exact @name("vrf_id");
        }
        actions = { NoAction };
        const default_action = NoAction;
        size = 64;
    }
    table ipv4_tbl {
        key = {
            meta.vrf_id : exact @name("vrf_id") @refers_to(vrf_tbl, vrf_id);
            ipv4.dst_addr : lpm @name("ipv4_dst");
        }
        actions = { drop, set_nexthop_id, set_wcmp_group_id, trap };
        const default_action = drop;
        size = 1024;
    }
    table ipv6_tbl {
        key = {
            meta.vrf_id : exact @name("vrf_id") @refers_to(vrf_tbl, vrf_id);
            ipv6.dst_addr : lpm @name("ipv6_dst");
        }
        actions = { drop, set_nexthop_id, set_wcmp_group_id, trap };
        const default_action = drop;
        size = 1024;
    }
    table wcmp_group_tbl {
        key = {
            meta.wcmp_group_id : exact @name("wcmp_group_id");
        }
        actions = { set_nexthop_id };
        const default_action = NoAction;
        size = 128;
        implementation = action_selector(wcmp_group_selector, 128, { ipv4.src_addr, ipv4.dst_addr, ipv4.protocol });
    }
    table nexthop_tbl {
        key = {
            meta.nexthop_id : exact @name("nexthop_id");
        }
        actions = { set_ip_nexthop };
        const default_action = NoAction;
        size = 256;
    }
    table neighbor_tbl {
        key = {
            meta.router_interface_id : exact @name("router_interface_id") @refers_to(router_interface_tbl, router_interface_id);
            meta.neighbor_id : exact @name("neighbor_id");
        }
        actions = { set_dst_mac };
        const default_action = drop;
        size = 256;
    }
    table router_interface_tbl {
        key = {
            meta.router_interface_id : exact @name("router_interface_id");
        }
        actions = { set_port_and_src_mac };
        const default_action = NoAction;
        size = 64;
    }
    @entry_restriction("(dst_ip::mask != 0 -> is_ipv4 == 1) && (dst_ipv6::mask != 0 -> is_ipv6 == 1) && (ttl::mask != 0 -> is_ipv4 == 1) && (icmp_type::mask != 0 -> (ip_protocol::mask != 0 && ip_protocol == 1)) && (is_ipv4::mask == 0 || is_ipv4::mask == 1) && (is_ipv6::mask == 0 || is_ipv6::mask == 1)")
    table acl_ingress_tbl {
        key = {
            meta.is_ipv4 : ternary @name("is_ipv4");
            meta.is_ipv6 : ternary @name("is_ipv6");
            ipv4.dst_addr : ternary @name("dst_ip");
            ipv6.dst_addr : ternary @name("dst_ipv6");
            ipv4.ttl : ternary @name("ttl");
            ipv4.protocol : ternary @name("ip_protocol");
            icmp.type : ternary @name("icmp_type");
            tcp.dst_port : ternary @name("l4_dst_port");
        }
        actions = { drop, trap, acl_copy, acl_mirror };
        const default_action = NoAction;
        size = 128;
    }
    table mirror_session_tbl {
        key = {
            meta.mirror_session_id : exact @name("mirror_session_id");
        }
        actions = { set_mirror_port };
        const default_action = NoAction;
        size = 4;
    }
    @logical_table
    table mirror_port_to_clone_session_tbl {
        key = {
            standard.mirror_port : exact @name("mirror_port");
        }
        actions = { set_clone_session };
        const default_action = NoAction;
        size = 64;
    }
    apply {
        if @label("classify_ipv4") (ipv4.isValid()) {
            meta.is_ipv4 = 1w1;
        }
        if @label("classify_ipv6") (ipv6.isValid()) {
            meta.is_ipv6 = 1w1;
        }
        if @label("ttl_trap") (((ipv4.isValid() && (ipv4.ttl <= 8w1)) || (ipv6.isValid() && (ipv6.hop_limit <= 8w1)))) {
            standard.punt = 1w1;
            standard.drop = 1w1;
        }
        if @label("broadcast_drop") ((ipv4.isValid() && (ipv4.dst_addr == 32w4294967295))) {
            standard.drop = 1w1;
        }
        if @label("not_dropped_gate") ((standard.drop == 1w0)) {
            l3_admit_tbl.apply();
            acl_pre_ingress_tbl.apply();
            vrf_tbl.apply();
            if @label("l3_admit_gate") ((meta.l3_admit == 1w1)) {
                if @label("route_ipv4") (ipv4.isValid()) {
                    ipv4_tbl.apply();
                } else {
                    if @label("route_ipv6") (ipv6.isValid()) {
                        ipv6_tbl.apply();
                    }
                }
            }
            if @label("resolution_gate") ((meta.route_hit == 1w1)) {
                if @label("wcmp_gate") ((meta.wcmp_group_id != 16w0)) {
                    wcmp_group_tbl.apply();
                }
                nexthop_tbl.apply();
                neighbor_tbl.apply();
                if @label("resolution_not_dropped") ((standard.drop == 1w0)) {
                    router_interface_tbl.apply();
                    if @label("ttl_decrement") (ipv4.isValid()) {
                        ipv4.ttl = (ipv4.ttl - 8w1);
                    } else {
                        if @label("hop_limit_decrement") (ipv6.isValid()) {
                            ipv6.hop_limit = (ipv6.hop_limit - 8w1);
                        }
                    }
                }
            }
            acl_ingress_tbl.apply();
            if @label("mirror_gate") ((meta.mirror_session_id != 16w0)) {
                mirror_session_tbl.apply();
                mirror_port_to_clone_session_tbl.apply();
            }
        }
    }
}
