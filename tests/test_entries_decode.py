"""Tests for the reference entry decoder: the P4Runtime validity rules."""

import pytest

from repro.bmv2.entries import (
    DecodedAction,
    DecodedActionSet,
    EntryDecodeError,
    decode_table_entry,
)
from repro.p4.ast import MatchKind
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileAction,
    ActionProfileActionSet,
    FieldMatch,
    TableEntry,
)

E = codec.encode


@pytest.fixture
def ids(toy_p4info):
    class Ids:
        vrf = toy_p4info.table_by_name("vrf_tbl")
        ipv4 = toy_p4info.table_by_name("ipv4_tbl")
        pre = toy_p4info.table_by_name("pre_ingress_tbl")
        noaction = toy_p4info.action_by_name("NoAction")
        set_nexthop = toy_p4info.action_by_name("set_nexthop_id")
        set_vrf = toy_p4info.action_by_name("set_vrf")
        drop = toy_p4info.action_by_name("drop")

    return Ids


def vrf_entry(ids, value=1, action=None):
    return TableEntry(
        ids.vrf.id,
        (FieldMatch(1, "exact", E(value, 16)),),
        action if action is not None else ActionInvocation(ids.noaction.id),
    )


def route_entry(ids, vrf=1, prefix=0x0A000000, plen=8, nexthop=3):
    return TableEntry(
        ids.ipv4.id,
        (
            FieldMatch(1, "exact", E(vrf, 16)),
            FieldMatch(2, "lpm", E(prefix, 32), prefix_len=plen),
        ),
        ActionInvocation(ids.set_nexthop.id, ((1, E(nexthop, 16)),)),
    )


def expect_reason(entry, p4info, reason):
    with pytest.raises(EntryDecodeError) as err:
        decode_table_entry(p4info, entry)
    assert err.value.reason == reason, err.value


class TestHappyPath:
    def test_exact_entry_decodes(self, ids, toy_p4info):
        decoded = decode_table_entry(toy_p4info, vrf_entry(ids))
        assert decoded.table_name == "vrf_tbl"
        match = decoded.match("vrf_id")
        assert match.value == 1
        assert match.mask == 0xFFFF

    def test_lpm_entry_decodes(self, ids, toy_p4info):
        decoded = decode_table_entry(toy_p4info, route_entry(ids))
        match = decoded.match("ipv4_dst")
        assert match.prefix_len == 8
        assert match.mask == 0xFF000000
        assert isinstance(decoded.action, DecodedAction)
        assert decoded.action.param_map() == {"nexthop_id": 3}

    def test_omitted_non_exact_keys_are_wildcards(self, ids, toy_p4info):
        entry = TableEntry(
            ids.ipv4.id,
            (FieldMatch(1, "exact", E(1, 16)),),  # LPM key omitted
            ActionInvocation(ids.drop.id),
        )
        decoded = decode_table_entry(toy_p4info, entry)
        match = decoded.match("ipv4_dst")
        assert not match.present
        assert match.mask == 0

    def test_identity_ignores_action(self, ids, toy_p4info):
        a = decode_table_entry(toy_p4info, route_entry(ids, nexthop=3))
        b = decode_table_entry(toy_p4info, route_entry(ids, nexthop=7))
        assert a.identity() == b.identity()

    def test_identity_ignores_match_order(self, ids, toy_p4info):
        entry = route_entry(ids)
        swapped = TableEntry(
            entry.table_id, tuple(reversed(entry.matches)), entry.action
        )
        assert (
            decode_table_entry(toy_p4info, entry).identity()
            == decode_table_entry(toy_p4info, swapped).identity()
        )


class TestRejections:
    def test_unknown_table(self, ids, toy_p4info):
        entry = TableEntry(0x02DEAD01, (), ActionInvocation(ids.noaction.id))
        expect_reason(entry, toy_p4info, "unknown_table")

    def test_unknown_match_field(self, ids, toy_p4info):
        entry = TableEntry(
            ids.vrf.id,
            (FieldMatch(9, "exact", E(1, 16)),),
            ActionInvocation(ids.noaction.id),
        )
        expect_reason(entry, toy_p4info, "unknown_match_field")

    def test_duplicate_match_field(self, ids, toy_p4info):
        entry = TableEntry(
            ids.vrf.id,
            (FieldMatch(1, "exact", E(1, 16)), FieldMatch(1, "exact", E(2, 16))),
            ActionInvocation(ids.noaction.id),
        )
        expect_reason(entry, toy_p4info, "duplicate_match_field")

    def test_missing_mandatory_match(self, ids, toy_p4info):
        entry = TableEntry(ids.vrf.id, (), ActionInvocation(ids.noaction.id))
        expect_reason(entry, toy_p4info, "missing_mandatory_match")

    def test_match_type_mismatch(self, ids, toy_p4info):
        entry = TableEntry(
            ids.vrf.id,
            (FieldMatch(1, "ternary", E(1, 16), mask=E(3, 16)),),
            ActionInvocation(ids.noaction.id),
        )
        expect_reason(entry, toy_p4info, "match_type_mismatch")

    def test_non_canonical_value(self, ids, toy_p4info):
        entry = TableEntry(
            ids.vrf.id,
            (FieldMatch(1, "exact", b"\x00\x01"),),
            ActionInvocation(ids.noaction.id),
        )
        expect_reason(entry, toy_p4info, "non_canonical_value")

    def test_value_out_of_range(self, ids, toy_p4info):
        entry = TableEntry(
            ids.vrf.id,
            (FieldMatch(1, "exact", E(0x1FFFF, 32)),),
            ActionInvocation(ids.noaction.id),
        )
        expect_reason(entry, toy_p4info, "value_out_of_range")

    def test_invalid_prefix_length(self, ids, toy_p4info):
        entry = route_entry(ids, plen=33)
        expect_reason(entry, toy_p4info, "invalid_prefix_length")
        entry = route_entry(ids, plen=0)
        expect_reason(entry, toy_p4info, "invalid_prefix_length")

    def test_lpm_value_outside_prefix(self, ids, toy_p4info):
        entry = route_entry(ids, prefix=0x0A0000FF, plen=8)
        expect_reason(entry, toy_p4info, "invalid_mask")

    def test_unknown_action(self, ids, toy_p4info):
        entry = vrf_entry(ids, action=ActionInvocation(0x01DEAD01))
        expect_reason(entry, toy_p4info, "unknown_action")

    def test_action_not_in_table(self, ids, toy_p4info):
        entry = vrf_entry(ids, action=ActionInvocation(ids.drop.id))
        expect_reason(entry, toy_p4info, "action_not_in_table")

    def test_missing_action(self, ids, toy_p4info):
        entry = TableEntry(ids.vrf.id, (FieldMatch(1, "exact", E(1, 16)),), None)
        expect_reason(entry, toy_p4info, "missing_action")

    def test_missing_action_param(self, ids, toy_p4info):
        entry = TableEntry(
            ids.ipv4.id,
            (
                FieldMatch(1, "exact", E(1, 16)),
                FieldMatch(2, "lpm", E(0x0A000000, 32), prefix_len=8),
            ),
            ActionInvocation(ids.set_nexthop.id),  # params omitted
        )
        expect_reason(entry, toy_p4info, "missing_action_param")

    def test_unknown_action_param(self, ids, toy_p4info):
        entry = TableEntry(
            ids.ipv4.id,
            (
                FieldMatch(1, "exact", E(1, 16)),
                FieldMatch(2, "lpm", E(0x0A000000, 32), prefix_len=8),
            ),
            ActionInvocation(ids.set_nexthop.id, ((1, E(3, 16)), (2, E(9, 16)))),
        )
        expect_reason(entry, toy_p4info, "unknown_action_param")

    def test_priority_on_priorityless_table(self, ids, toy_p4info):
        entry = TableEntry(
            ids.vrf.id,
            (FieldMatch(1, "exact", E(1, 16)),),
            ActionInvocation(ids.noaction.id),
            priority=5,
        )
        expect_reason(entry, toy_p4info, "unexpected_priority")

    def test_missing_priority_on_optional_table(self, ids, toy_p4info):
        entry = TableEntry(
            ids.pre.id,
            (FieldMatch(1, "optional", E(2, 16)),),
            ActionInvocation(ids.set_vrf.id, ((1, E(1, 16)),)),
            priority=0,
        )
        expect_reason(entry, toy_p4info, "missing_priority")

    def test_ternary_zero_mask_rejected(self, tor_p4info):
        acl = tor_p4info.table_by_name("acl_ingress_tbl")
        drop = tor_p4info.action_by_name("drop")
        ttl = acl.match_field_by_name("ttl")
        entry = TableEntry(
            acl.id,
            (FieldMatch(ttl.id, "ternary", E(0, 8), mask=E(0, 8)),),
            ActionInvocation(drop.id),
            priority=1,
        )
        expect_reason(entry, tor_p4info, "invalid_mask")


class TestActionSets:
    def _group(self, tor_p4info, members):
        wcmp = tor_p4info.table_by_name("wcmp_group_tbl")
        set_nh = tor_p4info.action_by_name("set_nexthop_id")
        return TableEntry(
            wcmp.id,
            (FieldMatch(1, "exact", E(1, 16)),),
            ActionProfileActionSet(
                tuple(
                    ActionProfileAction(
                        ActionInvocation(set_nh.id, ((1, E(nh, 16)),)), weight
                    )
                    for nh, weight in members
                )
            ),
        )

    def test_valid_action_set(self, tor_p4info):
        decoded = decode_table_entry(tor_p4info, self._group(tor_p4info, [(1, 2), (2, 3)]))
        assert isinstance(decoded.action, DecodedActionSet)
        assert len(decoded.action.members) == 2

    def test_zero_weight_rejected(self, tor_p4info):
        expect_reason(self._group(tor_p4info, [(1, 0)]), tor_p4info, "invalid_weight")

    def test_negative_weight_rejected(self, tor_p4info):
        expect_reason(self._group(tor_p4info, [(1, -3)]), tor_p4info, "invalid_weight")

    def test_overweight_group_rejected(self, tor_p4info):
        expect_reason(self._group(tor_p4info, [(1, 200)]), tor_p4info, "invalid_weight")

    def test_empty_action_set_rejected(self, tor_p4info):
        expect_reason(self._group(tor_p4info, []), tor_p4info, "missing_action")

    def test_single_action_on_selector_table_rejected(self, tor_p4info):
        wcmp = tor_p4info.table_by_name("wcmp_group_tbl")
        set_nh = tor_p4info.action_by_name("set_nexthop_id")
        entry = TableEntry(
            wcmp.id,
            (FieldMatch(1, "exact", E(1, 16)),),
            ActionInvocation(set_nh.id, ((1, E(1, 16)),)),
        )
        expect_reason(entry, tor_p4info, "expects_action_set")

    def test_action_set_on_direct_table_rejected(self, ids, toy_p4info):
        entry = vrf_entry(
            ids,
            action=ActionProfileActionSet(
                (ActionProfileAction(ActionInvocation(ids.noaction.id), 1),)
            ),
        )
        expect_reason(entry, toy_p4info, "expects_single_action")
