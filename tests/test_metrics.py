"""Tests for the §7 OKR metrics and incident rendering."""

from repro.fuzzer import FuzzerConfig
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switchv.metrics import (
    DEFAULT_FEATURES,
    FeatureMetrics,
    attribute_incident,
    collect_feature_metrics,
    render_metrics,
)
from repro.switchv.report import Incident, IncidentKind, IncidentLog
from repro.workloads import production_like_entries

FAST = FuzzerConfig(num_writes=10, updates_per_write=15, seed=5)


class TestFeatureMetrics:
    def test_fault_free_metrics_are_all_green(self, tor_program, tor_p4info):
        switch = PinsSwitchStack(tor_program)
        entries = production_like_entries(tor_p4info, total=70, seed=5)
        metrics = collect_feature_metrics(tor_program, switch, entries, FAST)
        by_name = {m.feature: m for m in metrics}
        assert by_name["routing"].control_updates > 0
        for metric in metrics:
            if metric.control_ok_ratio is not None:
                assert metric.control_ok_ratio == 1.0, metric.feature
            if metric.data_ok_ratio is not None:
                assert metric.data_ok_ratio == 1.0, metric.feature

    def test_faulty_feature_shows_regression(self, tor_program, tor_p4info):
        registry = FaultRegistry(["acl_name_capitalization"])
        switch = PinsSwitchStack(tor_program, faults=registry)
        entries = production_like_entries(tor_p4info, total=70, seed=5)
        metrics = collect_feature_metrics(tor_program, switch, entries, FAST)
        by_name = {m.feature: m for m in metrics}
        acl = by_name["acl"]
        assert acl.control_incidents > 0 or acl.data_incidents > 0
        # Unrelated features stay green on the control plane.
        routing = by_name["routing"]
        assert routing.control_incidents == 0

    def test_ratio_none_when_no_activity(self):
        metric = FeatureMetrics(feature="tunneling")
        assert metric.control_ok_ratio is None
        assert metric.data_ok_ratio is None
        assert metric.row() == ("tunneling", "-", "-")

    def test_render(self):
        metrics = [
            FeatureMetrics("routing", control_updates=10, control_incidents=0,
                           data_goals=5, data_incidents=1),
        ]
        text = render_metrics(metrics)
        assert "routing" in text
        assert "100%" in text
        assert "80%" in text

    def test_default_features_cover_sai_tables(self, tor_p4info):
        covered = {t for tables in DEFAULT_FEATURES.values() for t in tables}
        model_tables = {t.name for t in tor_p4info.tables.values()}
        assert model_tables <= covered


class TestAttribution:
    """Regression tests for feature attribution: structured tables, no
    substring matching, no first-match break."""

    def _incident(self, **kwargs):
        defaults = dict(
            kind=IncidentKind.VALID_REQUEST_REJECTED,
            summary="rejected",
            source="p4-fuzzer",
        )
        defaults.update(kwargs)
        return Incident(**defaults)

    def test_substring_collision_does_not_misattribute(self):
        # "route_tbl" is a substring-prefix of "route_ext_tbl"; attribution
        # must come from the structured table name, never from text search.
        features = {"a": ("route_tbl",), "b": ("route_ext_tbl",)}
        incident = self._incident(
            summary="INSERT rejected on route_ext_tbl (route_tbl was fine)",
            table_name="route_ext_tbl",
        )
        assert attribute_incident(incident, features) == ["b"]

    def test_incident_counts_against_every_implicated_feature(self):
        # A dangling reference implicates the referrer AND the target; both
        # features regress (the old code broke out after the first match).
        features = {"routing": ("ipv4_tbl",), "nexthop-resolution": ("nexthop_tbl",)}
        incident = self._incident(
            summary="dangling reference",
            table_name="ipv4_tbl",
            related_tables=("nexthop_tbl",),
        )
        assert sorted(attribute_incident(incident, features)) == [
            "nexthop-resolution",
            "routing",
        ]

    def test_transport_flakes_attribute_to_nothing(self):
        features = {"routing": ("ipv4_tbl",)}
        for kind in (IncidentKind.TRANSPORT_FLAKE, IncidentKind.SWITCH_UNRESPONSIVE):
            incident = self._incident(kind=kind, table_name="ipv4_tbl")
            assert attribute_incident(incident, features) == []

    def test_unattributed_incident_matches_no_feature(self):
        incident = self._incident(summary="pipeline config rejected")
        assert attribute_incident(incident, DEFAULT_FEATURES) == []

    def test_incident_tables_puts_primary_first_and_dedups(self):
        incident = self._incident(
            table_name="ipv4_tbl", related_tables=("nexthop_tbl", "ipv4_tbl")
        )
        assert incident.tables() == ("ipv4_tbl", "nexthop_tbl")


class TestIncidentRendering:
    def test_empty_log(self):
        assert "no incidents" in IncidentLog().render()

    def test_rendered_fields(self):
        log = IncidentLog()
        log.report(
            Incident(
                kind=IncidentKind.FORWARDING_MISMATCH,
                summary="port 3 instead of 2",
                expected="egress 2",
                observed="egress 3",
                test_input="eth_ipv4 packet",
                source="p4-symbolic",
            )
        )
        text = log.render()
        assert "forwarding behavior" in text
        assert "expected: egress 2" in text
        assert "observed: egress 3" in text
        assert "p4-symbolic" in text

    def test_flakes_render_in_their_own_section(self):
        log = IncidentLog()
        log.report(
            Incident(
                kind=IncidentKind.READBACK_MISMATCH,
                summary="entry missing",
                source="p4-fuzzer",
            )
        )
        log.report(
            Incident(
                kind=IncidentKind.TRANSPORT_FLAKE,
                summary="write abandoned",
                source="p4-fuzzer",
            )
        )
        text = log.render()
        assert "not model divergences" in text
        assert log.model_count == 1
        assert log.flake_count == 1
        assert [i.summary for i in log.model_only()] == ["entry missing"]
        assert [i.summary for i in log.flakes_only()] == ["write abandoned"]
