"""Tests for the §7 OKR metrics and incident rendering."""

from repro.fuzzer import FuzzerConfig
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switchv.metrics import (
    DEFAULT_FEATURES,
    FeatureMetrics,
    collect_feature_metrics,
    render_metrics,
)
from repro.switchv.report import Incident, IncidentKind, IncidentLog
from repro.workloads import production_like_entries

FAST = FuzzerConfig(num_writes=10, updates_per_write=15, seed=5)


class TestFeatureMetrics:
    def test_fault_free_metrics_are_all_green(self, tor_program, tor_p4info):
        switch = PinsSwitchStack(tor_program)
        entries = production_like_entries(tor_p4info, total=70, seed=5)
        metrics = collect_feature_metrics(tor_program, switch, entries, FAST)
        by_name = {m.feature: m for m in metrics}
        assert by_name["routing"].control_updates > 0
        for metric in metrics:
            if metric.control_ok_ratio is not None:
                assert metric.control_ok_ratio == 1.0, metric.feature
            if metric.data_ok_ratio is not None:
                assert metric.data_ok_ratio == 1.0, metric.feature

    def test_faulty_feature_shows_regression(self, tor_program, tor_p4info):
        registry = FaultRegistry(["acl_name_capitalization"])
        switch = PinsSwitchStack(tor_program, faults=registry)
        entries = production_like_entries(tor_p4info, total=70, seed=5)
        metrics = collect_feature_metrics(tor_program, switch, entries, FAST)
        by_name = {m.feature: m for m in metrics}
        acl = by_name["acl"]
        assert acl.control_incidents > 0 or acl.data_incidents > 0
        # Unrelated features stay green on the control plane.
        routing = by_name["routing"]
        assert routing.control_incidents == 0

    def test_ratio_none_when_no_activity(self):
        metric = FeatureMetrics(feature="tunneling")
        assert metric.control_ok_ratio is None
        assert metric.data_ok_ratio is None
        assert metric.row() == ("tunneling", "-", "-")

    def test_render(self):
        metrics = [
            FeatureMetrics("routing", control_updates=10, control_incidents=0,
                           data_goals=5, data_incidents=1),
        ]
        text = render_metrics(metrics)
        assert "routing" in text
        assert "100%" in text
        assert "80%" in text

    def test_default_features_cover_sai_tables(self, tor_p4info):
        covered = {t for tables in DEFAULT_FEATURES.values() for t in tables}
        model_tables = {t.name for t in tor_p4info.tables.values()}
        assert model_tables <= covered


class TestIncidentRendering:
    def test_empty_log(self):
        assert "no incidents" in IncidentLog().render()

    def test_rendered_fields(self):
        log = IncidentLog()
        log.report(
            Incident(
                kind=IncidentKind.FORWARDING_MISMATCH,
                summary="port 3 instead of 2",
                expected="egress 2",
                observed="egress 3",
                test_input="eth_ipv4 packet",
                source="p4-symbolic",
            )
        )
        text = log.render()
        assert "forwarding behavior" in text
        assert "expected: egress 2" in text
        assert "observed: egress 3" in text
        assert "p4-symbolic" in text
