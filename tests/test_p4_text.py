"""Tests for the P4 text pipeline: printer → parser round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmv2.entries import decode_table_entry
from repro.bmv2.interpreter import Interpreter, SeededHash
from repro.bmv2.packet import make_ipv4_packet
from repro.p4.p4info import build_p4info
from repro.p4.parser import P4ParseError, parse_program
from repro.p4.printer import print_program
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)
from repro.workloads import baseline_entries

ALL_BUILDERS = [
    build_toy_program,
    build_tor_program,
    build_wan_program,
    build_cerberus_program,
]


class TestPrinter:
    def test_emits_figure2_style_annotations(self, toy_program):
        text = print_program(toy_program)
        assert '@entry_restriction("vrf_id != 0")' in text
        assert "@refers_to(vrf_tbl, vrf_id)" in text
        assert "table vrf_tbl {" in text
        assert "const default_action = NoAction;" in text

    def test_emits_role_and_parser(self, tor_program):
        text = print_program(tor_program)
        assert '@role("ToR")' in text
        assert '@parser("ethernet_ipv4_ipv6")' in text

    def test_emits_selector_implementation(self, tor_program):
        text = print_program(tor_program)
        assert (
            "implementation = action_selector(wcmp_group_selector, 128,"
            " { ipv4.src_addr, ipv4.dst_addr, ipv4.protocol });" in text
        )

    def test_labels_in_apply(self, tor_program):
        text = print_program(tor_program)
        assert 'if @label("ttl_trap")' in text
        assert 'if @label("broadcast_drop")' in text


class TestRoundTrip:
    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_print_parse_print_fixpoint(self, build):
        program = build()
        text = print_program(program)
        reparsed = parse_program(text)
        assert print_program(reparsed) == text

    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_parsed_program_preserves_contract(self, build):
        """The parsed program exposes the identical control-plane API."""
        program = build()
        parsed = parse_program(print_program(program))
        assert build_p4info(parsed).fingerprint() == build_p4info(program).fingerprint()

    def test_parsed_program_forwards_identically(self, tor_program, tor_p4info, tor_baseline):
        parsed = parse_program(print_program(tor_program))
        state = {}
        for entry in tor_baseline:
            decoded = decode_table_entry(tor_p4info, entry)
            state.setdefault(decoded.table_name, []).append(decoded)
        for dst, ttl in ((0x0A010001, 64), (0x0A020002, 2), (0x0AFFFF01, 9), (0xFFFFFFFF, 5)):
            packet = make_ipv4_packet(dst, ttl=ttl)
            original = Interpreter(tor_program, state, SeededHash(1)).run(packet, 2)
            reparsed = Interpreter(parsed, state, SeededHash(1)).run(packet, 2)
            assert original.behavior_signature() == reparsed.behavior_signature()

    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_selector_fields_survive(self, build):
        """action_selector hash fields must not be dropped by the printer."""
        program = build()
        parsed = parse_program(print_program(program))
        for table in program.tables():
            if table.implementation is None:
                continue
            reparsed = parsed.table(table.name).implementation
            assert reparsed is not None
            assert reparsed.name == table.implementation.name
            assert reparsed.max_group_size == table.implementation.max_group_size
            assert [f.path for f in reparsed.selector_fields] == [
                f.path for f in table.implementation.selector_fields
            ]

    def test_action_ref_flags_survive(self, toy_program):
        """@defaultonly / @tableonly scope markers round-trip."""
        from dataclasses import replace

        from repro.p4.ast import ActionRef, If, Seq, TableApply

        original = toy_program.table("ipv4_tbl")
        flagged = replace(
            original,
            actions=(
                replace(original.actions[0], default_only=True),
                replace(original.actions[1], table_only=True),
            ),
        )

        def swap(block):
            nodes = []
            for node in block:
                if isinstance(node, TableApply) and node.table.name == "ipv4_tbl":
                    node = TableApply(flagged)
                elif isinstance(node, If):
                    node = replace(
                        node,
                        then_block=swap(node.then_block),
                        else_block=swap(node.else_block),
                    )
                nodes.append(node)
            return Seq(tuple(nodes))

        program = replace(toy_program, ingress=swap(toy_program.ingress))
        assert program.table("ipv4_tbl").actions[0].default_only
        text = print_program(program)
        assert "@defaultonly" in text
        assert "@tableonly" in text
        parsed = parse_program(text)
        refs = parsed.table("ipv4_tbl").actions
        assert isinstance(refs[0], ActionRef) and refs[0].default_only
        assert not refs[0].table_only
        assert refs[1].table_only and not refs[1].default_only
        assert print_program(parsed) == text

    def test_structure_survives(self, cerberus_program):
        parsed = parse_program(print_program(cerberus_program))
        assert parsed.role == "Cerberus"
        assert {t.name for t in parsed.tables()} == {
            t.name for t in cerberus_program.tables()
        }
        tunnel = parsed.table("tunnel_tbl")
        assert tunnel.entry_restriction == "tunnel_id != 0"
        assert parsed.table("vrf_tbl").is_resource_table
        assert any(t.is_logical for t in parsed.tables())


class TestParserErrors:
    def test_garbage_rejected(self):
        with pytest.raises(P4ParseError):
            parse_program("this is not p4 at all {{{")

    def test_missing_ingress_rejected(self):
        with pytest.raises(P4ParseError):
            parse_program('@role("x")\n@parser("ethernet_ipv4_ipv6")\n')

    def test_unknown_action_reference_rejected(self):
        text = """
@role("x")
@parser("ethernet_ipv4_ipv6")
control t_ingress(inout headers_t h, inout metadata_t m) {
    table bad {
        key = {
        }
        actions = { nonexistent };
        const default_action = NoAction;
        size = 4;
    }
    apply {
        bad.apply();
    }
}
"""
        with pytest.raises(P4ParseError):
            parse_program(text)

    def test_bad_match_kind_rejected(self):
        text = """
@role("x")
@parser("ethernet_ipv4_ipv6")
control t_ingress(inout headers_t h, inout metadata_t m) {
    action nop() {
    }
    table bad {
        key = {
            meta.x : sorta @name("x");
        }
        actions = { nop };
        const default_action = nop;
        size = 4;
    }
    apply {
    }
}
"""
        with pytest.raises(P4ParseError):
            parse_program(text)

    def test_header_without_suffix_rejected(self):
        with pytest.raises(P4ParseError):
            parse_program("header bad { bit<8> x; }")


class TestCheckedInSources:
    """The .p4 files under p4src/ must stay in sync with the builders."""

    @pytest.mark.parametrize(
        "filename,build",
        [
            ("toy_router.p4", build_toy_program),
            ("sai_tor.p4", build_tor_program),
            ("sai_wan.p4", build_wan_program),
            ("cerberus.p4", build_cerberus_program),
        ],
    )
    def test_p4src_matches_builder(self, filename, build):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "p4src" / filename
        source = path.read_text()
        assert source == print_program(build()), (
            f"{filename} drifted from its builder; regenerate with "
            "examples/p4_text_models.py or the printer"
        )
        parsed = parse_program(source)
        assert build_p4info(parsed).fingerprint() == build_p4info(build()).fingerprint()
