"""Tests for p4-fuzzer: generator, mutations, oracle, batching, campaigns."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmv2.entries import EntryDecodeError, decode_table_entry
from repro.fuzzer import FuzzerConfig, P4Fuzzer, RequestGenerator
from repro.fuzzer.batching import make_batches, verify_batch_independence
from repro.fuzzer.mutations import (
    MUST_REJECT,
    MUTATION_NAMES,
    apply_mutation,
    apply_random_mutation,
)
from repro.fuzzer.oracle import Oracle
from repro.p4.constraints import parse_constraint
from repro.p4.constraints.evaluator import evaluate_constraint
from repro.p4rt import codec
from repro.p4rt.messages import Update, UpdateType, WriteRequest, WriteResponse
from repro.p4rt.status import Code, Status
from repro.switch import PinsSwitchStack, ReferenceSwitch
from repro.workloads import EntryBuilder, baseline_entries

E = codec.encode


def _classify(p4info, entry, is_delete=False):
    """Reference classification: None if valid, else the rejection reason."""
    try:
        decoded = decode_table_entry(p4info, entry)
    except EntryDecodeError as exc:
        return exc.reason
    table = p4info.tables[entry.table_id]
    if table.entry_restriction and not is_delete:
        expr = parse_constraint(table.entry_restriction)
        if not evaluate_constraint(expr, decoded.key_values()):
            return "constraint_violation"
    return None


class TestGenerator:
    def _generator(self, p4info, seed=1):
        return RequestGenerator(p4info, random.Random(seed))

    def test_generates_syntactically_valid_updates(self, tor_p4info):
        gen = self._generator(tor_p4info)
        produced = 0
        for _ in range(300):
            update = gen.generate_update()
            if update is None:
                continue
            produced += 1
            if update.type is UpdateType.DELETE:
                continue
            reason = _classify(tor_p4info, update.entry)
            # Constraint violations are expected (§4.1: compliance is not
            # enforced); anything else means the generator is broken.
            assert reason in (None, "constraint_violation"), (reason, update)
        assert produced > 200

    def test_references_resolve_to_installed_values(self, tor_p4info):
        gen = self._generator(tor_p4info, seed=3)
        b = EntryBuilder(tor_p4info)
        vrf = b.exact("vrf_tbl", {"vrf_id": 7}, "NoAction")
        gen.state.install(vrf)
        ipv4 = tor_p4info.table_by_name("ipv4_tbl")
        for _ in range(50):
            update = gen.generate_insert(table_id=ipv4.id)
            if update is None:
                continue
            decoded = decode_table_entry(tor_p4info, update.entry)
            assert decoded.match("vrf_id").value == 7

    def test_unsatisfiable_references_defer_generation(self, tor_p4info):
        gen = self._generator(tor_p4info)
        ipv4 = tor_p4info.table_by_name("ipv4_tbl")
        # No VRFs installed: route generation must fail rather than dangle.
        assert gen.generate_insert(table_id=ipv4.id) is None

    def test_selector_tables_get_action_sets(self, tor_p4info):
        gen = self._generator(tor_p4info, seed=5)
        b = EntryBuilder(tor_p4info)
        gen.state.install(b.exact("router_interface_tbl", {"router_interface_id": 1},
                                  "set_port_and_src_mac", {"port": 1, "src_mac": 1}))
        gen.state.install(b.exact("neighbor_tbl",
                                  {"router_interface_id": 1, "neighbor_id": 1},
                                  "set_dst_mac", {"dst_mac": 2}))
        gen.state.install(b.exact("nexthop_tbl", {"nexthop_id": 4}, "set_ip_nexthop",
                                  {"router_interface_id": 1, "neighbor_id": 1}))
        wcmp = tor_p4info.table_by_name("wcmp_group_tbl")
        update = gen.generate_insert(table_id=wcmp.id)
        assert update is not None
        decoded = decode_table_entry(tor_p4info, update.entry)
        from repro.bmv2.entries import DecodedActionSet

        assert isinstance(decoded.action, DecodedActionSet)

    def test_constraint_aware_generation_is_compliant(self, tor_p4info):
        gen = RequestGenerator(tor_p4info, random.Random(2), constraint_aware=True)
        acl = tor_p4info.table_by_name("acl_ingress_tbl")
        compliant = 0
        for _ in range(30):
            update = gen.generate_insert(table_id=acl.id)
            if update is None:
                continue
            assert _classify(tor_p4info, update.entry) is None
            compliant += 1
        assert compliant > 0


class TestMutations:
    def _seed_update(self, tor_p4info, seed=1):
        gen = RequestGenerator(tor_p4info, random.Random(seed))
        b = EntryBuilder(tor_p4info)
        gen.state.install(b.exact("vrf_tbl", {"vrf_id": 7}, "NoAction"))
        gen.state.install(b.exact("router_interface_tbl", {"router_interface_id": 1},
                                  "set_port_and_src_mac", {"port": 1, "src_mac": 1}))
        while True:
            update = gen.generate_update()
            if update is not None and update.type is UpdateType.INSERT:
                return update

    def test_catalog_is_populated(self):
        assert len(MUTATION_NAMES) >= 12
        expected = {
            "invalid_table_id",
            "invalid_table_action",
            "invalid_match_type",
            "duplicate_match_field",
            "missing_mandatory_match_field",
            "invalid_action_selector_weight",
            "invalid_table_implementation",
            "invalid_reference",
            "non_canonical_value",
            "wrong_priority",
        }
        assert expected <= set(MUTATION_NAMES)

    def test_must_reject_mutations_are_really_invalid(self, tor_p4info):
        """Every MUST_REJECT mutant fails reference validation (§4.2:
        'interestingly invalid')."""
        rng = random.Random(9)
        checked = 0
        for _ in range(400):
            update = self._seed_update(tor_p4info, seed=rng.randint(0, 10_000))
            mutated = apply_random_mutation(rng, tor_p4info, update)
            if mutated is None or mutated.expectation != MUST_REJECT:
                continue
            reason = _classify(
                tor_p4info,
                mutated.update.entry,
                is_delete=mutated.update.type is UpdateType.DELETE,
            )
            if reason is None and mutated.mutation in ("invalid_reference", "invalid_port_resource"):
                # These two violate run-time state, not the static format;
                # the oracle handles them via state tracking.
                continue
            assert reason is not None, (mutated.mutation, mutated.update)
            checked += 1
        assert checked > 50

    def test_single_mutation_per_request(self, tor_p4info):
        """Each invalid request derives from one mutation of a valid one."""
        rng = random.Random(3)
        update = self._seed_update(tor_p4info)
        mutated = apply_mutation("duplicate_match_field", rng, tor_p4info, update)
        assert mutated is not None
        # Exactly one clause was added.
        assert len(mutated.update.entry.matches) == len(update.entry.matches) + 1

    def test_invalid_table_id_not_in_catalog(self, tor_p4info):
        rng = random.Random(3)
        update = self._seed_update(tor_p4info)
        mutated = apply_mutation("invalid_table_id", rng, tor_p4info, update)
        assert mutated.update.entry.table_id not in tor_p4info.tables

    def test_delete_nonexistent_flips_type(self, tor_p4info):
        rng = random.Random(3)
        update = self._seed_update(tor_p4info)
        mutated = apply_mutation("delete_nonexistent", rng, tor_p4info, update)
        assert mutated.update.type is UpdateType.DELETE

    def test_inapplicable_mutation_returns_none(self, toy_p4info):
        # The toy program has no selector tables, so selector mutations
        # cannot apply.
        rng = random.Random(3)
        gen = RequestGenerator(toy_p4info, rng)
        b = EntryBuilder(toy_p4info)
        gen.state.install(b.exact("vrf_tbl", {"vrf_id": 3}, "NoAction"))
        update = gen.generate_insert(table_id=toy_p4info.table_by_name("vrf_tbl").id)
        assert apply_mutation("invalid_action_selector_weight", rng, toy_p4info, update) is None


class TestBatching:
    def _updates(self, tor_p4info):
        b = EntryBuilder(tor_p4info)
        return [Update(UpdateType.INSERT, e) for e in baseline_entries(tor_p4info)]

    def test_batches_are_independent(self, tor_p4info):
        updates = self._updates(tor_p4info)
        batches = make_batches(tor_p4info, updates)
        for batch in batches:
            assert verify_batch_independence(tor_p4info, batch)

    def test_referenced_entries_precede_referrers(self, tor_p4info):
        updates = self._updates(tor_p4info)
        batches = make_batches(tor_p4info, updates)
        position = {}
        for index, batch in enumerate(batches):
            for update in batch:
                position[update.entry.match_key()] = index
        # vrf_tbl entry must land strictly before the routes that use it.
        vrf_id = tor_p4info.table_by_name("vrf_tbl").id
        ipv4_id = tor_p4info.table_by_name("ipv4_tbl").id
        vrf_pos = min(p for k, p in position.items() if k[0] == vrf_id)
        route_pos = min(p for k, p in position.items() if k[0] == ipv4_id)
        assert vrf_pos < route_pos

    def test_same_identity_never_shares_batch(self, tor_p4info):
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        updates = [
            Update(UpdateType.INSERT, entry),
            Update(UpdateType.DELETE, entry),
            Update(UpdateType.INSERT, entry),
        ]
        batches = make_batches(tor_p4info, updates)
        assert len(batches) == 3

    def test_max_batch_size_respected(self, tor_p4info):
        b = EntryBuilder(tor_p4info)
        updates = [
            Update(UpdateType.INSERT, b.exact("vrf_tbl", {"vrf_id": i}, "NoAction"))
            for i in range(1, 40)
        ]
        batches = make_batches(tor_p4info, updates, max_batch_size=10)
        assert all(len(batch) <= 10 for batch in batches)
        assert sum(len(batch) for batch in batches) == 39

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_workloads_batch_independently(self, seed):
        from repro.p4.p4info import build_p4info
        from repro.p4.programs import build_tor_program

        p4info = build_p4info(build_tor_program())
        gen = RequestGenerator(p4info, random.Random(seed))
        updates = [u for u in (gen.generate_update() for _ in range(60)) if u]
        for batch in make_batches(p4info, updates):
            assert verify_batch_independence(p4info, batch)


class TestOracle:
    def _oracle(self, tor_p4info):
        return Oracle(tor_p4info)

    def test_ok_for_valid_insert(self, tor_p4info):
        oracle = self._oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)],
            WriteResponse(statuses=(Status(),)),
            [entry],
        )
        assert not log

    def test_flags_accepted_invalid(self, tor_p4info):
        oracle = self._oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 0}, "NoAction")  # violates constraint
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)],
            WriteResponse(statuses=(Status(),)),
            [entry],
        )
        assert log.count == 1
        assert "accepted" in log.incidents[0].summary

    def test_flags_rejected_valid(self, tor_p4info):
        oracle = self._oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)],
            WriteResponse(statuses=(Status(Code.INTERNAL, "boom"),)),
            [],
        )
        assert log.count == 1
        assert "rejected" in log.incidents[0].summary

    def test_resource_exhaustion_beyond_guarantee_is_admissible(self, tor_p4info):
        oracle = self._oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        vrf_size = tor_p4info.table_by_name("vrf_tbl").size
        # Fill the oracle's view to the guaranteed size.
        for i in range(1, vrf_size + 1):
            entry = b.exact("vrf_tbl", {"vrf_id": i}, "NoAction")
            oracle.judge_batch(
                [Update(UpdateType.INSERT, entry)], WriteResponse(statuses=(Status(),)), None
            )
        extra = b.exact("vrf_tbl", {"vrf_id": vrf_size + 1}, "NoAction")
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, extra)],
            WriteResponse(statuses=(Status(Code.RESOURCE_EXHAUSTED, "full"),)),
            None,
        )
        assert not log

    def test_resource_exhaustion_below_guarantee_is_a_bug(self, tor_p4info):
        oracle = self._oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)],
            WriteResponse(statuses=(Status(Code.RESOURCE_EXHAUSTED, "full"),)),
            None,
        )
        assert log.count == 1

    def test_wrong_code_for_duplicate(self, tor_p4info):
        oracle = self._oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)], WriteResponse(statuses=(Status(),)), None
        )
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)],
            WriteResponse(statuses=(Status(Code.INTERNAL, "dup"),)),
            None,
        )
        assert log.count == 1
        assert log.incidents[0].kind.value == "wrong error code"

    def test_readback_mismatch_flagged(self, tor_p4info):
        oracle = self._oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)],
            WriteResponse(statuses=(Status(),)),
            [],  # read-back missing the accepted entry
        )
        assert log.count == 1
        assert "missing" in log.incidents[0].summary

    def test_oracle_adopts_observed_state(self, tor_p4info):
        oracle = self._oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)], WriteResponse(statuses=(Status(),)), [entry]
        )
        assert len(oracle.installed_entries()) == 1
        # Delete accepted: state shrinks.
        oracle.judge_batch(
            [Update(UpdateType.DELETE, entry)], WriteResponse(statuses=(Status(),)), []
        )
        assert oracle.installed_entries() == []


class TestOracleRegressions:
    """Regressions: swallowed constraint errors and the cardinality-mismatch
    desync."""

    def _broken_p4info(self, tor_program):
        """A fresh P4Info whose first constrained table has a malformed
        @entry_restriction."""
        import dataclasses

        from repro.p4.p4info import build_p4info

        p4info = build_p4info(tor_program)
        tid, table = next(
            (tid, t) for tid, t in p4info.tables.items() if t.entry_restriction
        )
        p4info.tables[tid] = dataclasses.replace(
            table, entry_restriction="((this does not parse"
        )
        return p4info, p4info.tables[tid]

    def test_malformed_constraint_is_surfaced_not_swallowed(self, tor_program):
        p4info, table = self._broken_p4info(tor_program)
        oracle = Oracle(p4info)
        log = oracle.constraint_incidents()
        assert log.count == 1
        incident = log.incidents[0]
        assert incident.kind.value == "malformed model artifact"
        assert incident.table_name == table.name
        assert "constraint checking disabled" in incident.summary

    def test_strict_mode_raises_at_construction(self, tor_program):
        from repro.p4.constraints.lang import ConstraintSyntaxError

        p4info, _ = self._broken_p4info(tor_program)
        with pytest.raises(ConstraintSyntaxError):
            Oracle(p4info, strict_constraints=True)

    def test_well_formed_model_reports_no_constraint_incidents(self, tor_p4info):
        assert not Oracle(tor_p4info).constraint_incidents()

    def test_fuzzer_reports_malformed_constraint_as_incident(self, tor_program):
        p4info, table = self._broken_p4info(tor_program)
        stack = PinsSwitchStack(tor_program)
        fuzzer = P4Fuzzer(
            p4info, stack, FuzzerConfig(num_writes=2, updates_per_write=5, seed=1)
        )
        result = fuzzer.run()
        assert any(
            i.kind.value == "malformed model artifact" and i.table_name == table.name
            for i in result.incidents
        )

    def test_cardinality_mismatch_resyncs_from_read_back(self, tor_p4info):
        """A truncated status list must not leave the oracle's expected
        state stale: it resyncs from the read-back, so the next batch is
        judged against the switch's actual state (no phantom incidents)."""
        oracle = Oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        # The switch applied the insert but returned zero statuses.
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)], WriteResponse(statuses=()), [entry]
        )
        assert log.count == 1
        assert log.incidents[0].summary == "response cardinality mismatch"
        # The read-back was adopted: the oracle now knows the entry exists.
        assert [e.match_key() for e in oracle.installed_entries()] == [entry.match_key()]
        # A duplicate insert is now judged against the adopted state:
        # ALREADY_EXISTS is the correct verdict, not a phantom incident.
        log2 = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)],
            WriteResponse(statuses=(Status(Code.ALREADY_EXISTS, "dup"),)),
            [entry],
        )
        assert not log2

    def test_cardinality_mismatch_without_read_back_keeps_projection(self, tor_p4info):
        oracle = Oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        log = oracle.judge_batch(
            [Update(UpdateType.INSERT, entry)], WriteResponse(statuses=()), None
        )
        assert log.count == 1
        assert oracle.installed_entries() == []

    def test_public_resync_adopts_observed_state(self, tor_p4info):
        oracle = Oracle(tor_p4info)
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 3}, "NoAction")
        oracle.resync([entry])
        assert [e.match_key() for e in oracle.installed_entries()] == [entry.match_key()]
        oracle.resync([])
        assert oracle.installed_entries() == []


class TestCampaigns:
    def test_fault_free_pins_stack_produces_no_incidents(self, tor_program, tor_p4info):
        stack = PinsSwitchStack(tor_program)
        fuzzer = P4Fuzzer(
            tor_p4info, stack, FuzzerConfig(num_writes=20, updates_per_write=20, seed=1)
        )
        result = fuzzer.run()
        assert result.incidents.count == 0, result.incidents.summary_lines()
        assert result.updates_sent > 300
        assert result.invalid_updates > 0

    def test_fault_free_reference_switch_produces_no_incidents(self, tor_program, tor_p4info):
        switch = ReferenceSwitch(tor_program)
        fuzzer = P4Fuzzer(
            tor_p4info, switch, FuzzerConfig(num_writes=15, updates_per_write=20, seed=2)
        )
        result = fuzzer.run()
        assert result.incidents.count == 0, result.incidents.summary_lines()

    @pytest.mark.parametrize(
        "fault",
        [
            "delete_nonexistent_fails_batch",
            "modify_keeps_old_params",
            "duplicate_entry_wrong_error",
            "read_ternary_unsupported",
            "zero_byte_id_mangled",
            "vrf_delete_fails",
        ],
    )
    def test_detects_control_plane_faults(self, tor_program, tor_p4info, fault):
        from repro.switch import FaultRegistry

        stack = PinsSwitchStack(tor_program, faults=FaultRegistry([fault]))
        fuzzer = P4Fuzzer(
            tor_p4info, stack, FuzzerConfig(num_writes=40, updates_per_write=25, seed=7)
        )
        result = fuzzer.run()
        assert result.incidents.count > 0, fault

    def test_mutation_restriction_is_honored(self, tor_program, tor_p4info):
        stack = PinsSwitchStack(tor_program)
        fuzzer = P4Fuzzer(
            tor_p4info,
            stack,
            FuzzerConfig(
                num_writes=10, updates_per_write=20, seed=1,
                mutations=["invalid_table_id"],
            ),
        )
        result = fuzzer.run()
        assert set(result.mutation_counts) <= {"invalid_table_id"}

    def test_no_mutations_mode(self, tor_program, tor_p4info):
        stack = PinsSwitchStack(tor_program)
        fuzzer = P4Fuzzer(
            tor_p4info,
            stack,
            FuzzerConfig(num_writes=10, updates_per_write=20, seed=1, mutations=[]),
        )
        result = fuzzer.run()
        assert result.invalid_updates == 0
        assert result.mutation_counts == {}

    def test_final_entries_reflect_oracle_state(self, tor_program, tor_p4info):
        stack = PinsSwitchStack(tor_program)
        fuzzer = P4Fuzzer(
            tor_p4info, stack, FuzzerConfig(num_writes=10, updates_per_write=20, seed=4)
        )
        result = fuzzer.run()
        from repro.p4rt.messages import ReadRequest

        read = {e.match_key() for e in stack.read(ReadRequest(table_id=0)).entries}
        assert {e.match_key() for e in result.final_entries} == read
