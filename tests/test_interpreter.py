"""Tests for the BMv2 interpreter: match semantics, actions, hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmv2.entries import decode_table_entry
from repro.bmv2.interpreter import Interpreter, RoundRobinHash, SeededHash
from repro.bmv2.packet import make_ipv4_packet, make_ipv6_packet
from repro.bmv2.simulator import Bmv2Simulator
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileAction,
    ActionProfileActionSet,
    FieldMatch,
    TableEntry,
)
from repro.workloads import EntryBuilder, baseline_entries

E = codec.encode


def decode_state(p4info, entries):
    state = {}
    for entry in entries:
        decoded = decode_table_entry(p4info, entry)
        state.setdefault(decoded.table_name, []).append(decoded)
    return state


@pytest.fixture
def toy_state(toy_p4info):
    b = EntryBuilder(toy_p4info)
    entries = [
        b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
        b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8, "set_nexthop_id", {"nexthop_id": 3}),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 16, "set_nexthop_id", {"nexthop_id": 7}),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0B000000, 8, "drop", {}),
    ]
    return decode_state(toy_p4info, entries)


class TestLpmSemantics:
    def test_longest_prefix_wins(self, toy_program, toy_state):
        interp = Interpreter(toy_program, toy_state)
        result = interp.run(make_ipv4_packet(0x0A000105), 2)  # 10.0.1.5 -> /16
        assert result.egress_port == 7

    def test_shorter_prefix_when_longer_misses(self, toy_program, toy_state):
        interp = Interpreter(toy_program, toy_state)
        result = interp.run(make_ipv4_packet(0x0A770105), 2)  # 10.119.x -> /8
        assert result.egress_port == 3

    def test_miss_hits_default_drop(self, toy_program, toy_state):
        interp = Interpreter(toy_program, toy_state)
        result = interp.run(make_ipv4_packet(0x0C000001), 2)
        assert result.dropped

    def test_explicit_drop_action(self, toy_program, toy_state):
        interp = Interpreter(toy_program, toy_state)
        result = interp.run(make_ipv4_packet(0x0B123456), 2)
        assert result.dropped

    def test_non_ipv4_skips_routing(self, toy_program, toy_state):
        interp = Interpreter(toy_program, toy_state)
        result = interp.run(make_ipv6_packet(0x1234), 2)
        assert result.dropped  # no forwarding decision -> drop

    def test_trace_records_hits_and_branches(self, toy_program, toy_state):
        interp = Interpreter(toy_program, toy_state)
        result = interp.run(make_ipv4_packet(0x0A000105), 2)
        tables_hit = [name for name, entry, _a in result.trace.table_hits if entry]
        assert tables_hit == ["pre_ingress_tbl", "vrf_tbl", "ipv4_tbl"]
        assert ("ipv4_gate", True) in result.trace.branches


class TestPrioritySemantics:
    @pytest.fixture
    def acl_state(self, tor_p4info):
        b = EntryBuilder(tor_p4info)
        entries = baseline_entries(tor_p4info) + [
            # Two overlapping ACL entries with different priorities.
            b.ternary(
                "acl_ingress_tbl",
                {"is_ipv4": (1, 1), "dst_ip": (0x0A010000, 0xFFFF0000)},
                "acl_copy",
                priority=5,
            ),
            b.ternary(
                "acl_ingress_tbl",
                {"is_ipv4": (1, 1), "dst_ip": (0x0A010200, 0xFFFFFF00)},
                "drop",
                priority=50,
            ),
        ]
        return decode_state(tor_p4info, entries)

    def test_higher_priority_wins(self, tor_program, acl_state):
        interp = Interpreter(tor_program, acl_state)
        result = interp.run(make_ipv4_packet(0x0A010203), 2)
        # /24-ish drop entry has priority 50 > 5.
        assert result.dropped

    def test_lower_priority_when_higher_does_not_match(self, tor_program, acl_state):
        interp = Interpreter(tor_program, acl_state)
        result = interp.run(make_ipv4_packet(0x0A019999), 2)
        assert result.punted  # acl_copy
        assert not result.dropped


class TestBaselinePipeline:
    def test_forward_and_rewrite(self, tor_program, tor_p4info, tor_baseline):
        state = decode_state(tor_p4info, tor_baseline)
        interp = Interpreter(tor_program, state)
        result = interp.run(make_ipv4_packet(0x0A020005, ttl=9), 1)  # 10.2/16 -> nh 2
        assert result.egress_port == 2
        assert result.packet.get("ipv4.ttl") == 8
        assert result.packet.get("ethernet.dst_addr") == 0x00BB00000002
        assert result.packet.get("ethernet.src_addr") == 0x00AA00000002

    def test_ttl_trap(self, tor_program, tor_p4info, tor_baseline):
        state = decode_state(tor_p4info, tor_baseline)
        interp = Interpreter(tor_program, state)
        result = interp.run(make_ipv4_packet(0x0A020005, ttl=1), 1)
        assert result.dropped
        assert result.punted

    def test_ipv6_hop_limit_trap(self, tor_program, tor_p4info, tor_baseline):
        state = decode_state(tor_p4info, tor_baseline)
        interp = Interpreter(tor_program, state)
        result = interp.run(make_ipv6_packet(0x1, hop_limit=0), 1)
        assert result.punted

    def test_broadcast_drop(self, tor_program, tor_p4info, tor_baseline):
        state = decode_state(tor_p4info, tor_baseline)
        interp = Interpreter(tor_program, state)
        result = interp.run(make_ipv4_packet(0xFFFFFFFF), 1)
        assert result.dropped
        assert not result.punted

    def test_acl_trap_canary(self, tor_program, tor_p4info, tor_baseline):
        state = decode_state(tor_p4info, tor_baseline)
        interp = Interpreter(tor_program, state)
        result = interp.run(make_ipv4_packet(0x0AFFFF01), 1)  # punt canary
        assert result.punted


class TestWcmpSelection:
    @pytest.fixture
    def wcmp_state(self, tor_p4info, tor_baseline):
        b = EntryBuilder(tor_p4info)
        entries = tor_baseline + [
            b.wcmp_group(1, [(1, 1), (2, 2), (3, 1)]),
            b.lpm(
                "ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0AC00000, 16,
                "set_wcmp_group_id", {"wcmp_group_id": 1},
            ),
        ]
        return decode_state(tor_p4info, entries)

    def test_round_robin_enumerates_members(self, tor_program, wcmp_state):
        ports = set()
        for round_index in range(3):
            interp = Interpreter(tor_program, wcmp_state, RoundRobinHash(round_index))
            result = interp.run(make_ipv4_packet(0x0AC00005), 4)
            ports.add(result.egress_port)
        assert ports == {1, 2, 3}

    def test_seeded_hash_is_deterministic(self, tor_program, wcmp_state):
        results = {
            Interpreter(tor_program, wcmp_state, SeededHash(seed=5))
            .run(make_ipv4_packet(0x0AC00005), 4)
            .egress_port
            for _ in range(3)
        }
        assert len(results) == 1

    def test_seeded_hash_spreads_flows(self, tor_program, wcmp_state):
        interp = Interpreter(tor_program, wcmp_state, SeededHash(seed=5))
        ports = {
            interp.run(make_ipv4_packet(0x0AC00005, src_addr=src), 4).egress_port
            for src in range(200)
        }
        assert len(ports) > 1  # multiple members actually used

    def test_weights_shape_distribution(self, tor_program, wcmp_state):
        interp = Interpreter(tor_program, wcmp_state, SeededHash(seed=5))
        counts = {1: 0, 2: 0, 3: 0}
        for src in range(400):
            port = interp.run(make_ipv4_packet(0x0AC00005, src_addr=src), 4).egress_port
            counts[port] += 1
        # Member 2 has double weight; expect visibly more traffic.
        assert counts[2] > counts[1]
        assert counts[2] > counts[3]


class TestBehaviorSets:
    def test_deterministic_packet_has_one_behavior(self, tor_program, tor_p4info, tor_baseline):
        sim = Bmv2Simulator(tor_program, decode_state(tor_p4info, tor_baseline))
        behaviors = sim.behaviors(make_ipv4_packet(0x0A020005), 1)
        assert len(behaviors) == 1

    def test_wcmp_packet_has_member_set(self, tor_program, tor_p4info, tor_baseline):
        b = EntryBuilder(tor_p4info)
        entries = tor_baseline + [
            b.wcmp_group(1, [(1, 1), (2, 1), (3, 1), (4, 1)]),
            b.lpm(
                "ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0AC00000, 16,
                "set_wcmp_group_id", {"wcmp_group_id": 1},
            ),
        ]
        sim = Bmv2Simulator(tor_program, decode_state(tor_p4info, entries))
        behaviors = sim.behaviors(make_ipv4_packet(0x0AC00001), 5)
        assert {b.result.egress_port for b in behaviors} == {1, 2, 3, 4}

    def test_admits_member_behavior(self, tor_program, tor_p4info, tor_baseline):
        b = EntryBuilder(tor_p4info)
        entries = tor_baseline + [
            b.wcmp_group(1, [(1, 1), (2, 1)]),
            b.lpm(
                "ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0AC00000, 16,
                "set_wcmp_group_id", {"wcmp_group_id": 1},
            ),
        ]
        state = decode_state(tor_p4info, entries)
        sim = Bmv2Simulator(tor_program, state)
        pkt = make_ipv4_packet(0x0AC00001)
        # A behaviour produced by a *different* hash (the switch's) must be
        # admitted as long as it lands on some member.
        other = Interpreter(tor_program, state, SeededHash(seed=99)).run(pkt, 5)
        assert sim.admits(pkt, 5, other.behavior_signature())

    def test_rejects_non_member_behavior(self, tor_program, tor_p4info, tor_baseline):
        state = decode_state(tor_p4info, tor_baseline)
        sim = Bmv2Simulator(tor_program, state)
        pkt = make_ipv4_packet(0x0A020005)
        good = sim.behaviors(pkt, 1)[0]
        # Same packet claimed on a different port: inadmissible.
        bogus = (15,) + good.signature[1:]
        assert not sim.admits(pkt, 1, bogus)


class TestInjectedSimulatorBugs:
    def test_optional_zero_match_changes_behavior(self, tor_program, tor_p4info, tor_baseline):
        state = decode_state(tor_p4info, tor_baseline)
        pkt = make_ipv4_packet(0x0A020005)
        ok = Interpreter(tor_program, state).run(pkt, 1)
        buggy = Interpreter(tor_program, state, optional_absent_matches_zero=True).run(pkt, 1)
        # The baseline l3_admit/pre-ingress entries omit in_port; the buggy
        # simulator refuses to match them from port 1 != 0 and drops.
        assert ok.egress_port == 2
        assert buggy.dropped

    def test_lpm_inversion_changes_behavior(self, toy_program, toy_state):
        pkt = make_ipv4_packet(0x0A000105)
        ok = Interpreter(toy_program, toy_state).run(pkt, 2)
        buggy = Interpreter(toy_program, toy_state, lpm_shortest_prefix_wins=True).run(pkt, 2)
        assert ok.egress_port == 7  # /16
        assert buggy.egress_port == 3  # /8 wins under the bug
