"""Randomized equivalence guard: compiled evaluation vs the tree-walk.

``repro.smt.compile`` re-implements concrete term semantics as postorder
bytecode; ``terms.evaluate`` stays the independent reference.  These tests
generate random term DAGs covering every operator and a spread of widths
(seeded, deterministic) and assert the two evaluators agree bit-for-bit —
including on missing variables, over-width assignment values, and truthy
boolean inputs.
"""

import random

import pytest

from repro.smt import terms as T
from repro.smt.compile import CompiledTerm, compile_term, evaluate_compiled

WIDTHS = (1, 2, 3, 4, 7, 8, 9, 12, 16, 17, 32, 33, 48, 64, 65, 128)


def _random_bv(rng: random.Random, depth: int, width: int) -> T.Term:
    """A random bitvector term of exactly ``width`` bits."""
    if depth <= 0 or rng.random() < 0.25:
        if rng.random() < 0.35:
            return T.bv_const(rng.getrandbits(width + 2), width)
        return T.bv_var(f"v{width}_{rng.randrange(4)}", width)
    choice = rng.randrange(12)
    if choice == 0:
        return _random_bv(rng, depth - 1, width) & _random_bv(rng, depth - 1, width)
    if choice == 1:
        return _random_bv(rng, depth - 1, width) | _random_bv(rng, depth - 1, width)
    if choice == 2:
        return _random_bv(rng, depth - 1, width) ^ _random_bv(rng, depth - 1, width)
    if choice == 3:
        return _random_bv(rng, depth - 1, width) + _random_bv(rng, depth - 1, width)
    if choice == 4:
        return _random_bv(rng, depth - 1, width) - _random_bv(rng, depth - 1, width)
    if choice == 5:
        return _random_bv(rng, depth - 1, width) * _random_bv(rng, depth - 1, width)
    if choice == 6:
        return ~_random_bv(rng, depth - 1, width)
    if choice == 7:
        return T.shl(_random_bv(rng, depth - 1, width), rng.randrange(0, width + 2))
    if choice == 8:
        return T.lshr(_random_bv(rng, depth - 1, width), rng.randrange(0, width + 2))
    if choice == 9 and width > 1:
        inner = rng.randrange(1, width)
        return T.zext(_random_bv(rng, depth - 1, inner), width - inner)
    if choice == 10 and width > 1:
        inner = rng.randrange(1, width)
        return T.sext(_random_bv(rng, depth - 1, inner), width - inner)
    if choice == 11 and width > 1:
        # Build wider, then extract a window of exactly `width` bits.
        outer = width + rng.randrange(1, 9)
        lo = rng.randrange(0, outer - width + 1)
        return T.extract(_random_bv(rng, depth - 1, outer), lo + width - 1, lo)
    # ite over bitvectors
    return T.ite(
        _random_bool(rng, depth - 1),
        _random_bv(rng, depth - 1, width),
        _random_bv(rng, depth - 1, width),
    )


def _random_bool(rng: random.Random, depth: int) -> T.Term:
    if depth <= 0 or rng.random() < 0.2:
        r = rng.random()
        if r < 0.2:
            return T.TRUE if rng.random() < 0.5 else T.FALSE
        return T.bool_var(f"b{rng.randrange(4)}")
    choice = rng.randrange(9)
    if choice == 0:
        return T.not_(_random_bool(rng, depth - 1))
    if choice == 1:
        return T.and_(*[_random_bool(rng, depth - 1) for _ in range(rng.randrange(2, 5))])
    if choice == 2:
        return T.or_(*[_random_bool(rng, depth - 1) for _ in range(rng.randrange(2, 5))])
    if choice == 3:
        return T.xor(_random_bool(rng, depth - 1), _random_bool(rng, depth - 1))
    if choice == 4:
        return T.eq(_random_bool(rng, depth - 1), _random_bool(rng, depth - 1))
    if choice == 5:
        return T.ite(
            _random_bool(rng, depth - 1),
            _random_bool(rng, depth - 1),
            _random_bool(rng, depth - 1),
        )
    width = rng.choice(WIDTHS)
    a = _random_bv(rng, depth - 1, width)
    b = _random_bv(rng, depth - 1, width)
    if choice == 6:
        return a.eq(b)
    if choice == 7:
        return a.ult(b) if rng.random() < 0.5 else a.ule(b)
    return a.slt(b) if rng.random() < 0.5 else a.sle(b)


def _random_assignment(rng: random.Random, term: T.Term) -> dict:
    assignment = {}
    for name, sort in T.free_variables(term).items():
        if rng.random() < 0.15:
            continue  # missing variable: both evaluators must default to 0
        # Bit-vectors deliberately over-width sometimes (evaluators must
        # mask); booleans by truthiness, not just 0/1.
        assignment[name] = (
            rng.getrandbits(sort.width + rng.randrange(0, 3))
            if isinstance(sort, T.BVSort)
            else rng.choice([0, 1, 2, -1, 7])
        )
    return assignment


@pytest.mark.parametrize("seed", range(20))
def test_random_bool_terms_agree(seed):
    rng = random.Random(1000 + seed)
    for _ in range(25):
        term = _random_bool(rng, depth=4)
        compiled = compile_term(term)
        for _ in range(4):
            assignment = _random_assignment(rng, term)
            assert compiled.evaluate(assignment) == T.evaluate(term, assignment)


@pytest.mark.parametrize("seed", range(20))
def test_random_bv_terms_agree(seed):
    rng = random.Random(2000 + seed)
    for _ in range(25):
        width = rng.choice(WIDTHS)
        term = _random_bv(rng, depth=4, width=width)
        compiled = compile_term(term)
        for _ in range(4):
            assignment = _random_assignment(rng, term)
            got = compiled.evaluate(assignment)
            want = T.evaluate(term, assignment)
            assert got == want
            assert got == got & ((1 << width) - 1)


def test_shared_subterms_compile_to_one_slot():
    x = T.bv_var("x", 16)
    shared = (x + 1) * 3
    term = shared.eq(5) | shared.ult(9)  # `shared` appears twice in the DAG
    compiled = compile_term(term)
    # slots: x, const 1, x+1, const 3, shared, const 5, eq, const 9, ult, or
    assert compiled.size == 10
    assert compiled.variables == frozenset(["x"])
    assert compiled.var_masks == {"x": 0xFFFF}


def test_compile_cache_is_per_term_object():
    x = T.bv_var("x", 8)
    term = x.eq(3) & x.ult(7)
    again = T.bv_var("x", 8).eq(3) & T.bv_var("x", 8).ult(7)
    assert term is again  # hash-consing
    assert compile_term(term) is compile_term(again)


def test_leaf_terms_compile():
    x = T.bv_var("x", 8)
    assert compile_term(x).evaluate({"x": 0x1FF}) == 0xFF
    assert compile_term(T.bv_const(0xAB, 8)).evaluate({}) == 0xAB
    assert compile_term(T.TRUE).evaluate({}) == 1
    assert compile_term(T.FALSE).evaluate({}) == 0
    b = T.bool_var("b")
    assert compile_term(b).evaluate({"b": 5}) == 1
    assert compile_term(b).evaluate({}) == 0


def test_bool_var_masks_are_one():
    b = T.bool_var("flag")
    x = T.bv_var("x", 4)
    compiled = compile_term(T.and_(b, x.eq(3)))
    assert compiled.var_masks == {"flag": 1, "x": 0xF}


def test_sext_sign_cases():
    x = T.bv_var("x", 4)
    term = T.sext(x, 4)
    compiled = compile_term(term)
    for value in range(16):
        assert compiled.evaluate({"x": value}) == T.evaluate(term, {"x": value})
    assert compiled.evaluate({"x": 0x8}) == 0xF8
    assert compiled.evaluate({"x": 0x7}) == 0x07


def test_shift_beyond_width():
    x = T.bv_var("x", 8)
    assert compile_term(T.shl(x, 9)).evaluate({"x": 0xFF}) == 0
    assert compile_term(T.lshr(x, 9)).evaluate({"x": 0xFF}) == 0


def test_concat_ordering_msb_first():
    hi = T.bv_var("hi", 4)
    lo = T.bv_var("lo", 8)
    term = T.concat(hi, lo)
    compiled = compile_term(term)
    assert compiled.evaluate({"hi": 0xA, "lo": 0x5C}) == 0xA5C
    assert compiled.evaluate({"hi": 0xA, "lo": 0x5C}) == T.evaluate(
        term, {"hi": 0xA, "lo": 0x5C}
    )


def test_deep_ite_chain_evaluates_iteratively():
    # Guarded-command chains over big tables are the production shape; the
    # compiled form must not recurse.
    x = T.bv_var("x", 32)
    acc = T.bv_const(0, 32)
    for i in range(3000):
        acc = T.ite(x.eq(i), T.bv_const(i + 1, 32), acc)
    compiled = compile_term(acc)
    assert compiled.evaluate({"x": 2500}) == 2501
    assert compiled.evaluate({"x": 99999}) == 0


def test_evaluate_compiled_convenience():
    x = T.bv_var("x", 8)
    assert evaluate_compiled(x + 1, {"x": 0xFF}) == 0
    assert evaluate_compiled(x.ule(10), {"x": 10}) == 1


def test_compiled_term_direct_construction_matches_cache():
    x = T.bv_var("x", 8)
    term = (x + 3).eq(7)
    direct = CompiledTerm(term)
    assert direct.evaluate({"x": 4}) == 1
    assert direct.evaluate({"x": 5}) == 0
