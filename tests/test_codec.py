"""Tests for the P4Runtime canonical byte codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.p4rt import codec


class TestEncode:
    def test_zero_is_single_zero_byte(self):
        assert codec.encode(0, 8) == b"\x00"
        assert codec.encode(0, 128) == b"\x00"

    def test_minimal_length(self):
        assert codec.encode(1, 32) == b"\x01"
        assert codec.encode(0x100, 32) == b"\x01\x00"
        assert codec.encode(0xFFFFFFFF, 32) == b"\xff\xff\xff\xff"

    def test_negative_rejected(self):
        with pytest.raises(codec.CodecError):
            codec.encode(-1, 8)

    def test_overflow_rejected(self):
        with pytest.raises(codec.CodecError):
            codec.encode(256, 8)

    def test_non_byte_width(self):
        # 12-bit field values still encode as whole bytes.
        assert codec.encode(0xFFF, 12) == b"\x0f\xff"
        with pytest.raises(codec.CodecError):
            codec.encode(0x1000, 12)


class TestDecode:
    def test_strict_rejects_leading_zeros(self):
        with pytest.raises(codec.CodecError):
            codec.decode(b"\x00\x01", 8)

    def test_strict_rejects_empty(self):
        with pytest.raises(codec.CodecError):
            codec.decode(b"", 8)

    def test_lenient_accepts_padded(self):
        assert codec.decode(b"\x00\x01", 8, strict=False) == 1

    def test_overflow_always_rejected(self):
        with pytest.raises(codec.CodecError):
            codec.decode(b"\x01\x00", 8)
        with pytest.raises(codec.CodecError):
            codec.decode(b"\x01\x00", 8, strict=False)


class TestCanonical:
    def test_is_canonical(self):
        assert codec.is_canonical(b"\x00")
        assert codec.is_canonical(b"\x01\x00")
        assert not codec.is_canonical(b"\x00\x01")
        assert not codec.is_canonical(b"")

    def test_canonicalize(self):
        assert codec.canonicalize(b"\x00\x00\x05") == b"\x05"
        assert codec.canonicalize(b"\x00\x00") == b"\x00"
        assert codec.canonicalize(b"") == b"\x00"


class TestMaskForPrefix:
    def test_full_prefix(self):
        assert codec.mask_for_prefix(32, 32) == 0xFFFFFFFF

    def test_zero_prefix(self):
        assert codec.mask_for_prefix(0, 32) == 0

    def test_partial(self):
        assert codec.mask_for_prefix(8, 32) == 0xFF000000
        assert codec.mask_for_prefix(24, 32) == 0xFFFFFF00

    def test_out_of_range(self):
        with pytest.raises(codec.CodecError):
            codec.mask_for_prefix(33, 32)
        with pytest.raises(codec.CodecError):
            codec.mask_for_prefix(-1, 32)


class TestRoundTrip:
    @given(st.integers(1, 128), st.data())
    def test_encode_decode_roundtrip(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        encoded = codec.encode(value, width)
        assert codec.is_canonical(encoded)
        assert codec.decode(encoded, width) == value

    @given(st.binary(min_size=0, max_size=16))
    def test_canonicalize_idempotent_and_value_preserving(self, raw):
        canonical = codec.canonicalize(raw)
        assert codec.is_canonical(canonical)
        assert codec.canonicalize(canonical) == canonical
        assert int.from_bytes(canonical, "big") == int.from_bytes(raw or b"\x00", "big")
