"""Unit and property tests for the SAT + bit-blasting solver pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import Result, Solver, bool_var, bv_const, bv_var
from repro.smt import terms as T
from repro.smt.sat import SatSolver, neg_lit, pos_lit


class TestSatSolver:
    def test_trivial_sat(self):
        s = SatSolver()
        v = s.new_var()
        assert s.add_clause([pos_lit(v)])
        assert s.solve()
        assert s.model_value(v) is True

    def test_trivial_unsat(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([pos_lit(v)])
        assert not s.add_clause([neg_lit(v)]) or not s.solve()

    def test_unit_propagation_chain(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(5)]
        # v0 and (v_i -> v_{i+1})
        s.add_clause([pos_lit(vs[0])])
        for a, b in zip(vs, vs[1:], strict=False):
            s.add_clause([neg_lit(a), pos_lit(b)])
        assert s.solve()
        assert all(s.model_value(v) for v in vs)

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: classic small UNSAT requiring real search.
        s = SatSolver()
        p = [[s.new_var() for _ in range(2)] for _ in range(3)]
        for i in range(3):
            s.add_clause([pos_lit(p[i][0]), pos_lit(p[i][1])])
        for h in range(2):
            for i in range(3):
                for j in range(i + 1, 3):
                    s.add_clause([neg_lit(p[i][h]), neg_lit(p[j][h])])
        assert not s.solve()

    def test_assumptions_sat_then_unsat(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([neg_lit(a), pos_lit(b)])  # a -> b
        assert s.solve([pos_lit(a)])
        assert s.model_value(b) is True
        s.add_clause([neg_lit(b)])  # now b must be false
        assert not s.solve([pos_lit(a)])
        assert s.solve([neg_lit(a)])  # formula still satisfiable without a

    def test_repeated_solves_reuse_state(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(10)]
        for i in range(9):
            s.add_clause([neg_lit(vs[i]), pos_lit(vs[i + 1])])
        for i in range(10):
            assert s.solve([pos_lit(vs[i])])

    def test_tautology_clause_ignored(self):
        s = SatSolver()
        v = s.new_var()
        assert s.add_clause([pos_lit(v), neg_lit(v)])
        assert s.solve()


class TestSolverBasics:
    def test_simple_sat_model(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add(x.eq(42))
        assert s.check() is Result.SAT
        assert s.model()["x"] == 42

    def test_conflicting_constraints_unsat(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add(x.eq(1), x.eq(2))
        assert s.check() is Result.UNSAT

    def test_model_raises_without_sat(self):
        s = Solver()
        x = bv_var("x", 4)
        s.add(x.ult(0))
        assert s.check() is Result.UNSAT
        with pytest.raises(RuntimeError):
            s.model()

    def test_arithmetic_constraint(self):
        s = Solver()
        x, y = bv_var("x", 8), bv_var("y", 8)
        s.add((x + y).eq(10), x.ult(y), x.ne(0))
        assert s.check() is Result.SAT
        m = s.model()
        assert (m["x"] + m["y"]) % 256 == 10
        assert 0 < m["x"] < m["y"]

    def test_overflow_wraps(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add((x + 1).eq(0))
        assert s.check() is Result.SAT
        assert s.model()["x"] == 255

    def test_subtraction_and_negation(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add((bv_const(0, 8) - x).eq(5))
        assert s.check() is Result.SAT
        assert s.model()["x"] == 251

    def test_multiplication(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add((x * 3).eq(15), x.ult(100))
        assert s.check() is Result.SAT
        assert (s.model()["x"] * 3) % 256 == 15

    def test_signed_comparison(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add(x.slt(0))
        assert s.check() is Result.SAT
        assert s.model()["x"] >= 128  # negative in two's complement

    def test_boolean_structure(self):
        s = Solver()
        p, q, r = bool_var("p"), bool_var("q"), bool_var("r")
        s.add(T.or_(p, q), T.implies(p, r), T.implies(q, r), T.not_(T.and_(p, q)))
        assert s.check() is Result.SAT
        m = s.model()
        assert m["r"] == 1
        assert (m["p"] == 1) != (m["q"] == 1)

    def test_concat_extract(self):
        s = Solver()
        x = bv_var("x", 16)
        s.add(x.extract(15, 8).eq(0xAB), x.extract(7, 0).eq(0xCD))
        assert s.check() is Result.SAT
        assert s.model()["x"] == 0xABCD

    def test_ite(self):
        s = Solver()
        c = bool_var("c")
        x = bv_var("x", 8)
        s.add(T.ite(c, bv_const(1, 8), bv_const(2, 8)).eq(x), x.eq(2))
        assert s.check() is Result.SAT
        assert s.model()["c"] == 0

    def test_non_boolean_assertion_rejected(self):
        s = Solver()
        with pytest.raises(TypeError):
            s.add(bv_var("x", 8))


class TestAssumptions:
    def test_check_under_assumptions_does_not_persist(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add(x.ult(10))
        assert s.check(x.eq(3)) is Result.SAT
        assert s.model()["x"] == 3
        assert s.check(x.eq(7)) is Result.SAT
        assert s.model()["x"] == 7
        assert s.check(x.eq(100)) is Result.UNSAT
        assert s.check() is Result.SAT  # base formula unaffected

    def test_many_incremental_queries(self):
        # The p4-symbolic usage pattern: one base formula, many goals.
        s = Solver()
        x = bv_var("x", 8)
        y = bv_var("y", 8)
        s.add(y.eq(x + 1))
        for goal in range(0, 200, 17):
            assert s.check(x.eq(goal)) is Result.SAT
            m = s.model()
            assert m["y"] == (goal + 1) % 256

    def test_false_assumption_short_circuits(self):
        s = Solver()
        assert s.check(T.FALSE) is Result.UNSAT
        assert s.check(T.TRUE) is Result.SAT


class TestModelSoundness:
    """Every model returned must satisfy the asserted formula, judged by the
    independent concrete evaluator."""

    def _check_model(self, solver, formulas):
        m = solver.model()
        for f in formulas:
            assert m.evaluate(f) == 1, f"model {m!r} falsifies {f!r}"

    def test_lpm_style_constraints(self):
        # Shaped like p4-symbolic guards: prefix match + negation of a
        # higher-priority prefix.
        s = Solver()
        dst = bv_var("dst", 32)
        in_10 = dst.extract(31, 24).eq(10)
        in_10_0 = T.and_(in_10, dst.extract(23, 16).eq(0))
        f = T.and_(in_10, T.not_(in_10_0))
        s.add(f)
        assert s.check() is Result.SAT
        self._check_model(s, [f])
        m = s.model()
        assert (m["dst"] >> 24) == 10
        assert (m["dst"] >> 16) & 0xFF != 0

    def test_ternary_masked_match(self):
        s = Solver()
        x = bv_var("x", 16)
        f = (x & bv_const(0xFF00, 16)).eq(0x1200)
        s.add(f)
        assert s.check() is Result.SAT
        self._check_model(s, [f])


@st.composite
def small_formula(draw):
    """A random boolean formula over two 6-bit vars and a bool var."""
    x = bv_var("hx", 6)
    y = bv_var("hy", 6)
    p = bool_var("hp")

    def bv_atom():
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return x
        if choice == 1:
            return y
        return bv_const(draw(st.integers(0, 63)), 6)

    def bv_term(depth):
        if depth == 0:
            return bv_atom()
        op = draw(st.integers(0, 6))
        a = bv_term(depth - 1)
        b = bv_term(depth - 1)
        if op == 0:
            return a + b
        if op == 1:
            return a - b
        if op == 2:
            return a & b
        if op == 3:
            return a | b
        if op == 4:
            return a ^ b
        if op == 5:
            return ~a
        return T.ite(p, a, b)

    def bool_term(depth):
        if depth == 0:
            op = draw(st.integers(0, 3))
            a = bv_term(1)
            b = bv_term(1)
            if op == 0:
                return a.eq(b)
            if op == 1:
                return a.ult(b)
            if op == 2:
                return a.ule(b)
            return p
        op = draw(st.integers(0, 2))
        a = bool_term(depth - 1)
        b = bool_term(depth - 1)
        if op == 0:
            return T.and_(a, b)
        if op == 1:
            return T.or_(a, b)
        return T.not_(a)

    return bool_term(draw(st.integers(1, 2)))


class TestSolverProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_formula())
    def test_models_satisfy_formula(self, formula):
        s = Solver()
        s.add(formula)
        if s.check() is Result.SAT:
            assert s.model().evaluate(formula) == 1

    @settings(max_examples=40, deadline=None)
    @given(small_formula())
    def test_solver_agrees_with_exhaustive_check(self, formula):
        # 6-bit x, 6-bit y, bool p: 2^13 assignments — exhaustively decidable.
        s = Solver()
        s.add(formula)
        result = s.check()
        truly_sat = any(
            T.evaluate(formula, {"hx": hx, "hy": hy, "hp": hp})
            for hx in range(0, 64, 7)
            for hy in range(0, 64, 7)
            for hp in (0, 1)
        )
        if truly_sat:
            # Sampled satisfiability implies the solver must report SAT.
            assert result is Result.SAT
        if result is Result.UNSAT:
            # UNSAT claims get the full exhaustive treatment.
            assert not any(
                T.evaluate(formula, {"hx": hx, "hy": hy, "hp": hp})
                for hx in range(64)
                for hy in range(64)
                for hp in (0, 1)
            )

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 2**16 - 1),
        st.integers(0, 2**16 - 1),
        st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
    )
    def test_bitblast_matches_concrete_semantics(self, a, b, op):
        x = bv_var("bbx", 16)
        y = bv_var("bby", 16)
        expr = {
            "add": x + y,
            "sub": x - y,
            "mul": x * y,
            "and": x & y,
            "or": x | y,
            "xor": x ^ y,
        }[op]
        expected = T.evaluate(expr, {"bbx": a, "bby": b})
        s = Solver()
        s.add(x.eq(a), y.eq(b))
        assert s.check() is Result.SAT
        assert s.model().evaluate(expr) == expected


def _guarded_pigeonhole(pigeons, holes):
    """PHP(pigeons, holes) clauses guarded by one activation variable.

    With the guard assumed true the instance is the classic UNSAT
    pigeonhole; with it assumed false every guarded clause is satisfied
    trivially.  Returns (solver, guard_var)."""
    s = SatSolver()
    g = s.new_var()
    p = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for i in range(pigeons):
        s.add_clause([neg_lit(g)] + [pos_lit(p[i][k]) for k in range(holes)])
    for k in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                s.add_clause([neg_lit(g), neg_lit(p[i][k]), neg_lit(p[j][k])])
    return s, g


class TestAssumptionSemantics:
    """The contracts SolverPool relies on: TRUE/FALSE short-circuits,
    failed-assumption subsets, and learned-clause reuse across checks."""

    def test_true_assumption_is_skipped_entirely(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add(x.ult(10))
        before = s.stats
        assert s.check(T.TRUE) is Result.SAT
        assert s.check(T.TRUE, x.eq(3)) is Result.SAT
        assert s.model()["x"] == 3
        # TRUE adds nothing to the encoding: no conflicts were needed.
        assert s.stats["conflicts"] == before["conflicts"]

    def test_false_assumption_short_circuits_before_sat(self):
        s = Solver()
        x = bv_var("x", 8)
        s.add(x.ult(10))
        before = s.stats
        assert s.check(T.FALSE) is Result.UNSAT
        # Short-circuited: the SAT core never ran.
        after = s.stats
        assert after["decisions"] == before["decisions"]
        assert after["conflicts"] == before["conflicts"]
        # A constant-false *structure* simplifies to FALSE and also
        # short-circuits (assumptions are simplified before encoding).
        assert s.check(T.bv_const(1, 8).eq(T.bv_const(2, 8))) is Result.UNSAT
        assert after["decisions"] == s.stats["decisions"]
        # The solver is still usable afterwards.
        assert s.check(x.eq(4)) is Result.SAT

    def test_failed_assumptions_subset_of_assumptions(self):
        s = SatSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([neg_lit(a), pos_lit(b)])  # a -> b
        assumed = [pos_lit(a), neg_lit(b), pos_lit(c)]
        assert not s.solve(assumed)
        failed = list(s.failed_assumptions)
        assert failed
        assert set(failed) <= set(assumed)
        # The failing literal, together with the assumptions tried before
        # it, is sufficient for UNSAT (assumptions apply in order).
        prefix = assumed[: assumed.index(failed[0]) + 1]
        assert not s.solve(prefix)
        # The irrelevant assumption alone is fine.
        assert s.solve([pos_lit(c)])

    def test_failed_assumptions_cleared_on_sat(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([neg_lit(a), pos_lit(b)])
        assert not s.solve([pos_lit(a), neg_lit(b)])
        assert s.failed_assumptions
        assert s.solve([pos_lit(a)])
        assert s.failed_assumptions == []

    def test_learned_clauses_reused_across_assumption_sets(self):
        # First refutation of the guarded pigeonhole does real search;
        # repeating the same assumption set must reuse what was learned
        # (the conflict counter barely moves the second time).
        s, g = _guarded_pigeonhole(6, 5)
        assert not s.solve([pos_lit(g)])
        first = s.conflicts
        assert first > 20  # genuinely hard the first time
        assert not s.solve([pos_lit(g)])
        assert s.conflicts - first < first / 4
        # Learned clauses never block the relaxed query.
        assert s.solve([neg_lit(g)])

    def test_solver_level_repeat_check_gets_cheaper(self):
        s = Solver()
        x = bv_var("mx", 12)
        y = bv_var("my", 12)
        s.add((x * y).eq(T.bv_const(3127, 12)))  # needs actual search
        goal = x.ult(200)
        assert s.check(goal) is Result.SAT
        first = s.stats["conflicts"]
        assert s.check(goal) is Result.SAT
        assert s.stats["conflicts"] - first <= max(first // 4, 1)


class TestReduceDb:
    def test_reduce_db_keeps_solver_correct_under_pressure(self):
        # PHP(8,7) drives >2000 learned clauses, so _reduce_db really
        # fires (watch remapping, suffix compaction) mid-search.
        s, g = _guarded_pigeonhole(8, 7)
        assert not s.solve([pos_lit(g)])
        learned = len(s._clauses) - s._num_problem_clauses
        # Reduction actually discarded clauses: far fewer survive than
        # the number of conflicts that each learned one.
        assert s.conflicts > 2000
        assert learned < s.conflicts
        # Verdicts stay correct on the compacted database.
        assert not s.solve([pos_lit(g)])
        assert s.solve([neg_lit(g)])
        assert s.solve([])

    def test_explicit_reduce_db_preserves_answers(self):
        s, g = _guarded_pigeonhole(6, 5)
        assert not s.solve([pos_lit(g)])
        s._cancel_until(0)
        s._reduce_db()  # below threshold: must be a no-op, not a crash
        assert not s.solve([pos_lit(g)])
        assert s.solve([neg_lit(g)])


class TestModernKernel:
    """The modernized CDCL internals: binary implication lists, blocking
    literals, on-the-fly minimization, and the geometric reduce schedule."""

    def test_binary_clauses_bypass_clause_db(self):
        s = SatSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([neg_lit(a), pos_lit(b)])  # a -> b
        s.add_clause([neg_lit(b), pos_lit(c)])  # b -> c
        # Binaries live in the implication lists, never in clause storage.
        assert len(s._clauses) == 0
        assert pos_lit(b) in s._bin_occurs[pos_lit(a) ^ 1]
        d = s.new_var()
        s.add_clause([pos_lit(a), pos_lit(b), pos_lit(d)])
        assert len(s._clauses) == 1
        assert s.solve([pos_lit(a)])
        assert s.model_value(c) is True
        # Binary propagation also produces usable conflict analysis:
        # ¬c ripples back through the implication lists (¬b, then ¬a), and
        # the ternary clause then forces d.
        s.add_clause([neg_lit(c)])
        assert not s.solve([pos_lit(a)])
        assert s.solve()
        assert s.model_value(d) is True

    def test_geometric_reduce_schedule_two_reductions(self):
        # Lower the cap so PHP(7,6) crosses it repeatedly: each reduction
        # must grow the cap geometrically, and verdicts must survive
        # several compaction waves.
        s, g = _guarded_pigeonhole(7, 6)
        s._reduce_cap = 50.0
        s._reduce_cap_mult = 2.0
        assert not s.solve([pos_lit(g)])
        assert s.db_reductions >= 2
        assert s._reduce_cap == 50.0 * 2.0 ** s.db_reductions
        assert not s.solve([pos_lit(g)])
        assert s.solve([neg_lit(g)])

    def test_problem_clause_added_after_learning_survives_reduction(self):
        # Incremental solving appends problem clauses *after* clauses were
        # learned; reduction must key off the learned flag, not position.
        s, g = _guarded_pigeonhole(7, 6)
        s._reduce_cap = 50.0
        assert not s.solve([pos_lit(g)])
        x, y, z = s.new_var(), s.new_var(), s.new_var()
        assert s.add_clause([pos_lit(x), pos_lit(y), pos_lit(z)])
        assert s.add_clause([neg_lit(x)])
        assert s.add_clause([neg_lit(y)])
        before = s.db_reductions
        s._cancel_until(0)
        s._reduce_db()
        assert s.db_reductions == before + 1
        # The late problem clause still constrains: x, y false force z.
        assert s.solve([neg_lit(g)])
        assert s.model_value(z) is True
        assert not s.solve([neg_lit(g), neg_lit(z)])

    def test_on_the_fly_minimization_fires(self):
        s, g = _guarded_pigeonhole(7, 6)
        assert not s.solve([pos_lit(g)])
        # Self-subsumption against reason clauses shortened learned clauses.
        assert s.minimized_literals > 0

    def test_clauses_received_counter(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([pos_lit(a)])
        s.add_clause([neg_lit(a), pos_lit(b)])
        s.add_clause([pos_lit(a), neg_lit(a)])  # tautology still counted
        assert s.clauses_received == 3

    def test_legacy_kernel_agrees_on_guarded_pigeonhole(self):
        from repro.smt.legacy_sat import LegacySatSolver

        for cls in (SatSolver, LegacySatSolver):
            s = cls()
            g = s.new_var()
            p = [[s.new_var() for _ in range(4)] for _ in range(5)]
            for i in range(5):
                s.add_clause([neg_lit(g)] + [pos_lit(p[i][k]) for k in range(4)])
            for k in range(4):
                for i in range(5):
                    for j in range(i + 1, 5):
                        s.add_clause([neg_lit(g), neg_lit(p[i][k]), neg_lit(p[j][k])])
            assert not s.solve([pos_lit(g)])
            assert s.solve([neg_lit(g)])


class TestSolverPool:
    def test_solver_reused_and_constraints_asserted_once(self):
        from repro.smt.pool import SolverPool

        pool = SolverPool()
        x = bv_var("px", 8)
        c = x.ult(10)
        s1 = pool.solver(("k",), [c])
        s2 = pool.solver(("k",), [c])
        assert s1 is s2
        assert len(s1.assertions) == 1  # identical term not re-asserted
        assert pool.misses == 1 and pool.hits == 1
        assert ("k",) in pool and len(pool) == 1
        assert s1.check(x.eq(3)) is Result.SAT
        assert s1.check(x.eq(100)) is Result.UNSAT

    def test_distinct_keys_are_isolated(self):
        from repro.smt.pool import SolverPool

        pool = SolverPool()
        x = bv_var("px", 8)
        pool.solver(("a",), [x.eq(1)])
        sb = pool.solver(("b",), [x.eq(2)])
        assert sb.check() is Result.SAT
        assert sb.model()["px"] == 2

    def test_formula_memo_roundtrip(self):
        from repro.smt.pool import MISS, SolverPool

        pool = SolverPool()
        x = bv_var("px", 8)
        f = x.eq(5)
        key = ("prog", f)
        assert pool.lookup_formula(key) is MISS
        pool.store_formula(key, {"px": 5})
        assert pool.lookup_formula(key) == {"px": 5}
        # Hash-consing: an equal-structure term is the same key.
        assert pool.lookup_formula(("prog", bv_var("px", 8).eq(5))) == {"px": 5}
        # UNSAT is memoised as None, distinct from MISS.
        g = T.and_(x.eq(44), x.eq(1))
        pool.store_formula(("prog", g), None)
        assert pool.lookup_formula(("prog", g)) is None

    def test_discard_and_clear(self):
        from repro.smt.pool import MISS, SolverPool

        pool = SolverPool()
        x = bv_var("px", 8)
        pool.solver(("k",), [x.ult(10)])
        pool.store_formula(("p", x.eq(1)), {"px": 1})
        pool.memo[("m",)] = [1, 2]
        pool.discard(("k",))
        assert ("k",) not in pool
        fresh = pool.solver(("k",), [x.ult(10)])
        assert len(fresh.assertions) == 1  # re-asserted after discard
        pool.clear()
        assert len(pool) == 0
        assert pool.lookup_formula(("p", x.eq(1))) is MISS
        assert pool.memo == {}

    def test_stats_aggregate_across_solvers(self):
        from repro.smt.pool import SolverPool

        pool = SolverPool()
        x = bv_var("px", 8)
        sa = pool.solver(("a",), [x.ult(10)])
        sa.check(x.eq(3))
        sb = pool.solver(("b",), [x.ult(20)])
        sb.check(x.eq(4))
        stats = pool.stats
        assert stats["solvers"] == 2
        assert stats["propagations"] >= 1
