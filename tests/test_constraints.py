"""Tests for the P4-constraints extension: language, evaluator, symbolic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p4.constraints import parse_constraint
from repro.p4.constraints.evaluator import (
    KeyValue,
    check_entry_against_constraint,
    evaluate_constraint,
)
from repro.p4.constraints.lang import (
    CAnd,
    CBool,
    CCmp,
    CInt,
    CKey,
    CNot,
    COr,
    ConstraintSyntaxError,
    keys_mentioned,
)
from repro.p4.constraints.symbolic import SymbolicKeySet, encode_constraint
from repro.smt import Result, Solver
from repro.smt import terms as T


class TestParser:
    def test_simple_comparison(self):
        expr = parse_constraint("vrf_id != 0")
        assert isinstance(expr, CCmp)
        assert expr.op == "!="
        assert expr.left == CKey("vrf_id")
        assert expr.right == CInt(0)

    def test_accessors(self):
        expr = parse_constraint("dst_ip::mask != 0 && dst_ip::prefix_length <= 32")
        assert isinstance(expr, CAnd)
        assert expr.args[0].left == CKey("dst_ip", "mask")
        assert expr.args[1].left == CKey("dst_ip", "prefix_length")

    def test_unknown_accessor_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("dst_ip::nonsense == 0")

    def test_implication_desugars_to_or(self):
        expr = parse_constraint("a == 1 -> b == 2")
        assert isinstance(expr, COr)
        assert isinstance(expr.args[0], CNot)

    def test_implication_right_associative(self):
        expr = parse_constraint("a == 1 -> b == 2 -> c == 3")
        # a -> (b -> c)
        assert isinstance(expr, COr)
        assert isinstance(expr.args[1], COr)

    def test_precedence_and_over_or(self):
        expr = parse_constraint("a == 1 || b == 2 && c == 3")
        assert isinstance(expr, COr)
        assert isinstance(expr.args[1], CAnd)

    def test_parentheses(self):
        expr = parse_constraint("(a == 1 || b == 2) && c == 3")
        assert isinstance(expr, CAnd)
        assert isinstance(expr.args[0], COr)

    def test_negation(self):
        expr = parse_constraint("!(a == 1)")
        assert isinstance(expr, CNot)

    def test_literals(self):
        assert parse_constraint("true") == CBool(True)
        expr = parse_constraint("a == 0xFF && b == 0b101 && c == 10")
        assert expr.args[0].right == CInt(255)
        assert expr.args[1].right == CInt(5)
        assert expr.args[2].right == CInt(10)

    def test_comments_and_whitespace(self):
        expr = parse_constraint(
            """
            // leading comment
            a == 1 &&   # trailing comment style
            b == 2
            """
        )
        assert isinstance(expr, CAnd)

    def test_dotted_key_names(self):
        expr = parse_constraint("headers.ipv4.dst_addr == 1")
        assert expr.left == CKey("headers.ipv4.dst_addr")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("a == 1 extra")

    def test_bare_key_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("vrf_id")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("(a == 1")

    def test_keys_mentioned(self):
        expr = parse_constraint("a == 1 && (b::mask != 0 || a > 2)")
        assert keys_mentioned(expr) == ["a", "b"]

    def test_all_relational_operators(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            expr = parse_constraint(f"x {op} 5")
            assert isinstance(expr, CCmp)
            assert expr.op == op


class TestEvaluator:
    def test_vrf_restriction(self):
        expr = parse_constraint("vrf_id != 0")
        assert evaluate_constraint(expr, {"vrf_id": KeyValue(value=1, present=True)})
        assert not evaluate_constraint(expr, {"vrf_id": KeyValue(value=0, present=True)})

    def test_mask_accessor_for_omitted_key_is_zero(self):
        expr = parse_constraint("dst_ip::mask != 0 -> is_ipv4 == 1")
        keys = {"dst_ip": KeyValue(), "is_ipv4": KeyValue()}
        assert evaluate_constraint(expr, keys)  # vacuously true
        keys = {"dst_ip": KeyValue(value=1, mask=0xFF, present=True), "is_ipv4": KeyValue()}
        assert not evaluate_constraint(expr, keys)
        keys["is_ipv4"] = KeyValue(value=1, mask=1, present=True)
        assert evaluate_constraint(expr, keys)

    def test_prefix_length_accessor(self):
        expr = parse_constraint("dst::prefix_length >= 8")
        assert evaluate_constraint(expr, {"dst": KeyValue(prefix_len=16)})
        assert not evaluate_constraint(expr, {"dst": KeyValue(prefix_len=4)})

    def test_unknown_key_reported(self):
        expr = parse_constraint("nope == 1")
        reason = check_entry_against_constraint(expr, {})
        assert reason is not None
        assert "unknown key" in reason

    def test_check_returns_none_on_pass(self):
        expr = parse_constraint("x == 1")
        assert check_entry_against_constraint(expr, {"x": KeyValue(value=1)}) is None

    def test_real_tor_restriction(self, tor_program):
        acl = tor_program.table("acl_ingress_tbl")
        expr = parse_constraint(acl.entry_restriction)
        # Matching ipv6 dst on an entry not qualified as ipv6: violation.
        keys = {
            "is_ipv4": KeyValue(),
            "is_ipv6": KeyValue(),
            "dst_ip": KeyValue(),
            "dst_ipv6": KeyValue(value=1, mask=0xFF, present=True),
            "ttl": KeyValue(),
            "ip_protocol": KeyValue(),
            "icmp_type": KeyValue(),
            "l4_dst_port": KeyValue(),
        }
        assert not evaluate_constraint(expr, keys)
        keys["is_ipv6"] = KeyValue(value=1, mask=1, present=True)
        assert evaluate_constraint(expr, keys)


class TestSymbolicEncoding:
    def _keyset(self, p4info, table_name):
        return SymbolicKeySet(p4info.table_by_name(table_name))

    def test_vrf_constraint_sat_and_model_compliant(self, toy_p4info):
        keys = self._keyset(toy_p4info, "vrf_tbl")
        expr = parse_constraint("vrf_id != 0")
        solver = Solver()
        solver.add(keys.wellformedness())
        solver.add(encode_constraint(expr, keys))
        assert solver.check() is Result.SAT
        model = solver.model()
        assert model.get("vrf_tbl.vrf_id::value", 0) != 0

    def test_negated_constraint_gives_violating_entry(self, toy_p4info):
        keys = self._keyset(toy_p4info, "vrf_tbl")
        expr = parse_constraint("vrf_id != 0")
        solver = Solver()
        solver.add(keys.wellformedness())
        solver.add(T.not_(encode_constraint(expr, keys)))
        assert solver.check() is Result.SAT
        assert solver.model().get("vrf_tbl.vrf_id::value", 1) == 0

    def test_wellformedness_exact_keys(self, toy_p4info):
        keys = self._keyset(toy_p4info, "vrf_tbl")
        solver = Solver()
        solver.add(keys.wellformedness())
        assert solver.check() is Result.SAT
        assert solver.model()["vrf_tbl.vrf_id::mask"] == 0xFFFF

    def test_lpm_wellformedness_links_mask_and_prefix(self, toy_p4info):
        keys = self._keyset(toy_p4info, "ipv4_tbl")
        solver = Solver()
        solver.add(keys.wellformedness())
        assert (
            solver.check(
                keys.prefix_vars["ipv4_dst"].eq(T.bv_const(8, 16)),
                keys.mask_vars["ipv4_dst"].ne(T.bv_const(0xFF000000, 32)),
            )
            is Result.UNSAT
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**16 - 1))
    def test_symbolic_agrees_with_concrete_evaluator(self, toy_p4info, vrf_value):
        expr = parse_constraint("vrf_id != 0 && vrf_id <= 0xFF00")
        keys = self._keyset(toy_p4info, "vrf_tbl")
        solver = Solver()
        solver.add(keys.wellformedness())
        solver.add(encode_constraint(expr, keys))
        symbolic = (
            solver.check(keys.value_vars["vrf_id"].eq(T.bv_const(vrf_value, 16)))
            is Result.SAT
        )
        concrete = evaluate_constraint(
            expr, {"vrf_id": KeyValue(value=vrf_value, mask=0xFFFF, present=True)}
        )
        assert symbolic == concrete
