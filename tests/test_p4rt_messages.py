"""Tests for P4Runtime messages, statuses, and the in-process client."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileAction,
    ActionProfileActionSet,
    FieldMatch,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
)
from repro.p4rt.service import P4RuntimeClient
from repro.p4rt.status import BatchStatus, Code, Status, invalid_argument

E = codec.encode


class TestMatchKey:
    def test_key_ignores_action(self):
        a = TableEntry(1, (FieldMatch(1, "exact", E(5, 16)),), ActionInvocation(7))
        b = TableEntry(1, (FieldMatch(1, "exact", E(5, 16)),), ActionInvocation(9))
        assert a.match_key() == b.match_key()

    def test_key_ignores_match_order(self):
        m1 = FieldMatch(1, "exact", E(5, 16))
        m2 = FieldMatch(2, "exact", E(9, 16))
        assert TableEntry(1, (m1, m2), None).match_key() == TableEntry(1, (m2, m1), None).match_key()

    def test_key_canonicalizes_values(self):
        padded = TableEntry(1, (FieldMatch(1, "exact", b"\x00\x05"),), None)
        canonical = TableEntry(1, (FieldMatch(1, "exact", b"\x05"),), None)
        assert padded.match_key() == canonical.match_key()

    def test_key_distinguishes_priority(self):
        a = TableEntry(1, (), None, priority=1)
        b = TableEntry(1, (), None, priority=2)
        assert a.match_key() != b.match_key()

    def test_key_distinguishes_table(self):
        assert TableEntry(1, (), None).match_key() != TableEntry(2, (), None).match_key()

    def test_match_by_field(self):
        entry = TableEntry(1, (FieldMatch(3, "exact", E(5, 16)),), None)
        assert entry.match_by_field(3) is not None
        assert entry.match_by_field(4) is None

    @given(st.integers(1, 2**16 - 1))
    def test_canonical_round_trip_property(self, value):
        raw = FieldMatch(1, "exact", b"\x00" * 3 + E(value, 16))
        assert raw.canonical().value == E(value, 16)


class TestActionSets:
    def test_action_param_lookup(self):
        inv = ActionInvocation(1, ((1, b"\x01"), (2, b"\x02")))
        assert inv.param(2) == b"\x02"
        assert inv.param(3) is None

    def test_action_set_repr(self):
        group = ActionProfileActionSet(
            (ActionProfileAction(ActionInvocation(1), 3),)
        )
        assert "*3" in repr(group)


class TestStatus:
    def test_ok_predicate(self):
        assert Status().ok
        assert not invalid_argument("nope").ok

    def test_batch_status_overall_is_first_failure(self):
        batch = BatchStatus(
            per_update=[Status(), invalid_argument("a"), Status(Code.NOT_FOUND, "b")]
        )
        assert not batch.ok
        assert batch.overall.code is Code.INVALID_ARGUMENT

    def test_batch_status_ok(self):
        batch = BatchStatus(per_update=[Status(), Status()])
        assert batch.ok
        assert batch.overall.ok

    def test_write_response_ok(self):
        from repro.p4rt.messages import WriteResponse

        assert WriteResponse(statuses=(Status(),)).ok
        assert not WriteResponse(statuses=(Status(), invalid_argument("x"))).ok


class TestClient:
    def test_client_convenience_methods(self, toy_program, toy_p4info):
        from repro.switch import ReferenceSwitch
        from repro.workloads import EntryBuilder

        switch = ReferenceSwitch(toy_program)
        client = P4RuntimeClient(switch)
        assert client.set_pipeline(toy_p4info).ok
        b = EntryBuilder(toy_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 3}, "NoAction")
        assert client.insert(entry).ok
        assert len(client.read_all()) == 1
        table_id = toy_p4info.table_by_name("vrf_tbl").id
        assert len(client.read_table(table_id)) == 1
        assert client.read_table(0xDEAD) == []
        assert client.delete(entry).ok
        assert client.read_all() == []

    def test_write_request_len(self):
        entry = TableEntry(1, (), None)
        request = WriteRequest(updates=(Update(UpdateType.INSERT, entry),))
        assert len(request) == 1
