"""Tests for the mini controller and the bug-catalogue data."""

import pytest

from repro.bmv2.packet import deparse_packet, make_ipv4_packet
from repro.controller import Controller, RouteIntent
from repro.switch import PinsSwitchStack
from repro.workloads import bug_catalog


class TestController:
    @pytest.fixture
    def controller(self, tor_program, tor_p4info):
        stack = PinsSwitchStack(tor_program)
        controller = Controller(tor_p4info, stack)
        assert controller.connect().ok
        return controller, stack

    def test_install_fabric_accepted(self, controller):
        ctrl, _stack = controller
        result = ctrl.install_fabric(
            ports=[1, 2, 3],
            routes=[RouteIntent(prefix=0x0A100000, prefix_len=16, port=2)],
        )
        assert result.ok, result.rejected
        assert result.accepted > 10

    def test_programmed_routes_forward(self, controller):
        ctrl, stack = controller
        ctrl.install_fabric(
            ports=[1, 2, 3],
            routes=[RouteIntent(prefix=0x0A100000, prefix_len=16, port=3)],
        )
        obs = stack.send_packet(deparse_packet(make_ipv4_packet(0x0A100042)), 1)
        assert obs.egress_port == 3

    def test_audit_matches_switch(self, controller):
        ctrl, _stack = controller
        ctrl.install_fabric(ports=[1, 2], routes=[])
        assert ctrl.audit()

    def test_withdraw_reverses_install(self, controller):
        ctrl, _stack = controller
        ctrl.install_fabric(
            ports=[1, 2],
            routes=[RouteIntent(prefix=0x0A100000, prefix_len=16, port=2)],
        )
        entries = list(ctrl.shadow.values())
        result = ctrl.withdraw(entries)
        assert result.ok, result.rejected
        assert ctrl.audit()
        assert not ctrl.shadow

    def test_unknown_port_rejected(self, controller):
        ctrl, _stack = controller
        ctrl.install_fabric(ports=[1], routes=[])
        with pytest.raises(KeyError):
            ctrl.compile_route(RouteIntent(prefix=0, prefix_len=1, port=9))


class TestBugCatalogData:
    def test_table1_totals_consistent(self):
        total = sum(t for t, _f, _s in bug_catalog.TABLE1_PINS.values())
        fuzzer = sum(f for _t, f, _s in bug_catalog.TABLE1_PINS.values())
        symbolic = sum(s for _t, _f, s in bug_catalog.TABLE1_PINS.values())
        # The published table is internally inconsistent by one: the
        # Orchestration Agent row reads 24 but its tool split is 12+11=23,
        # and the per-component Bugs column sums to 123 against a stated
        # total of 122.  We keep the numbers verbatim.
        assert total == 123
        assert (fuzzer, symbolic) == bug_catalog.TABLE1_PINS_TOTAL[1:]
        assert fuzzer + symbolic == bug_catalog.TABLE1_PINS_TOTAL[0]
        total_c = sum(t for t, _f, _s in bug_catalog.TABLE1_CERBERUS.values())
        assert total_c == bug_catalog.TABLE1_CERBERUS_TOTAL[0]

    def test_bucketing(self):
        assert bug_catalog.bucket_of(0) == "0-3"
        assert bug_catalog.bucket_of(3) == "3-6"
        assert bug_catalog.bucket_of(14) == "10-15"
        assert bug_catalog.bucket_of(59) == "30-60"
        assert bug_catalog.bucket_of(500) == ">= 150"

    def test_synthesized_population_matches_aggregates(self):
        population = bug_catalog.synthesize_resolution_days(total=122)
        assert len(population) == 122
        unresolved = sum(1 for _t, d in population if d is None)
        assert unresolved == bug_catalog.PINS_UNRESOLVED
        fuzzer = sum(1 for t, _d in population if t == "p4-fuzzer")
        assert fuzzer == bug_catalog.TABLE1_PINS_TOTAL[1]
        resolved = [d for _t, d in population if d is not None]
        within_5 = sum(1 for d in resolved if d <= 5) / len(resolved)
        within_14 = sum(1 for d in resolved if d <= 14) / len(resolved)
        assert 0.25 <= within_5 <= 0.45  # "33% of bugs fixed within 5 days"
        assert within_14 > 0.5  # "majority ... fixed within 14 days"

    def test_synthesis_is_deterministic(self):
        a = bug_catalog.synthesize_resolution_days(seed=7)
        b = bug_catalog.synthesize_resolution_days(seed=7)
        assert a == b

    def test_figure7_series_shape(self):
        population = bug_catalog.synthesize_resolution_days()
        series = bug_catalog.aggregate_figure7(population)
        assert set(series) == {"Total", "Symbolic", "Fuzzer"}
        for label, _l, _h in bug_catalog.FIGURE7_BUCKETS:
            total = series["Total"][label]
            assert total == series["Symbolic"][label] + series["Fuzzer"][label]

    def test_catalog_days_flow_into_population(self):
        known = bug_catalog.catalog_resolution_days("pins")
        population = bug_catalog.synthesize_resolution_days()
        assert population[: len(known)] == known

    def test_median_resolution(self):
        population = [("x", 1), ("x", 5), ("x", 9), ("x", None)]
        assert bug_catalog.median_resolution_days(population) == 5
