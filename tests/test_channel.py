"""Tests for the fault-injecting transport and the retrying client."""

import pytest

from repro.p4rt.channel import (
    PROFILES,
    ChannelError,
    ChannelReset,
    DeadlineExceeded,
    FaultInjectingChannel,
    FaultProfile,
    RequestDropped,
    ResponseDropped,
    RetriesExhausted,
    resolve_profile,
)
from repro.p4rt.messages import (
    ActionInvocation,
    FieldMatch,
    ReadRequest,
    ReadResponse,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.retry import (
    RetryingP4RuntimeClient,
    RetryPolicy,
    build_resilient_client,
)
from repro.p4rt.service import P4RuntimeService
from repro.p4rt.status import Code, Status


class FakeSwitch(P4RuntimeService):
    """A minimal in-memory switch with P4Runtime insert/modify/delete
    semantics, recording every write that actually reaches it."""

    def __init__(self):
        self.entries = {}
        self.write_calls = []

    def set_forwarding_pipeline_config(self, p4info):
        return Status()

    def write(self, request):
        self.write_calls.append(request)
        statuses = []
        for update in request.updates:
            key = update.entry.match_key()
            if update.type is UpdateType.INSERT:
                if key in self.entries:
                    statuses.append(Status(Code.ALREADY_EXISTS, "exists"))
                else:
                    self.entries[key] = update.entry
                    statuses.append(Status())
            elif update.type is UpdateType.DELETE:
                if key not in self.entries:
                    statuses.append(Status(Code.NOT_FOUND, "missing"))
                else:
                    del self.entries[key]
                    statuses.append(Status())
            else:
                if key not in self.entries:
                    statuses.append(Status(Code.NOT_FOUND, "missing"))
                else:
                    self.entries[key] = update.entry
                    statuses.append(Status())
        return WriteResponse(statuses=tuple(statuses))

    def read(self, request):
        return ReadResponse(entries=tuple(self.entries.values()))

    def packet_out(self, packet):
        return Status()

    def drain_packet_ins(self):
        return []


def _entry(n: int) -> TableEntry:
    return TableEntry(
        table_id=1,
        matches=(FieldMatch(field_id=1, kind="exact", value=bytes([n])),),
        action=ActionInvocation(action_id=1),
    )


def _insert(n: int) -> Update:
    return Update(UpdateType.INSERT, _entry(n))


def _request(*ns: int) -> WriteRequest:
    return WriteRequest(updates=tuple(_insert(n) for n in ns))


class TestFaultProfiles:
    def test_catalogue_has_the_acceptance_profiles(self):
        for name in ("none", "drop_request", "drop_response", "duplicate",
                     "delay", "reset", "crash", "chaos"):
            assert name in PROFILES

    def test_resolve_accepts_names_and_reseeds(self):
        profile = resolve_profile("duplicate", seed=99)
        assert profile.duplicate_rate == 0.10
        assert profile.seed == 99

    def test_single_fault_profiles_are_at_most_ten_percent(self):
        for name, profile in PROFILES.items():
            for rate in (profile.drop_request_rate, profile.drop_response_rate,
                         profile.duplicate_rate, profile.delay_rate,
                         profile.reset_rate, profile.crash_rate):
                assert rate <= 0.10, name


class TestFaultInjectingChannel:
    def _channel(self, switch, **rates):
        seed = rates.pop("seed", 7)
        return FaultInjectingChannel(
            switch, FaultProfile(name="test", seed=seed, **rates)
        )

    def test_clean_profile_passes_everything_through(self):
        switch = FakeSwitch()
        channel = self._channel(switch)
        response = channel.write(_request(1, 2))
        assert all(s.ok for s in response.statuses)
        assert len(switch.write_calls) == 1
        assert channel.stats.faults_injected == 0

    def test_fault_sequence_is_deterministic(self):
        def run():
            switch = FakeSwitch()
            channel = self._channel(
                switch, drop_request_rate=0.3, drop_response_rate=0.3, seed=5
            )
            outcomes = []
            for n in range(40):
                try:
                    channel.write(_request(n))
                    outcomes.append("ok")
                except ChannelError as exc:
                    outcomes.append(type(exc).__name__)
            return outcomes

        assert run() == run()

    def test_dropped_request_never_reaches_the_switch(self):
        switch = FakeSwitch()
        channel = self._channel(switch, drop_request_rate=1.0)
        with pytest.raises(RequestDropped):
            channel.write(_request(1))
        assert switch.write_calls == []
        assert switch.entries == {}

    def test_dropped_response_is_applied_anyway(self):
        switch = FakeSwitch()
        channel = self._channel(switch, drop_response_rate=1.0)
        with pytest.raises(ResponseDropped):
            channel.write(_request(1))
        assert len(switch.entries) == 1

    def test_duplicate_applies_twice_and_returns_first_response(self):
        switch = FakeSwitch()
        channel = self._channel(switch, duplicate_rate=1.0)
        response = channel.write(_request(1))
        # First application inserted; the duplicate's ALREADY_EXISTS is lost.
        assert response.statuses[0].ok
        assert len(switch.write_calls) == 2
        assert len(switch.entries) == 1

    def test_delay_under_the_deadline_is_transparent(self):
        switch = FakeSwitch()
        channel = self._channel(switch, delay_rate=1.0, max_delay_s=0.01)
        channel.rpc_deadline_s = 0.05
        response = channel.write(_request(1))
        assert response.statuses[0].ok
        assert channel.stats.delays == 1
        assert channel.stats.deadline_exceeded == 0

    def test_delay_past_the_deadline_raises(self):
        switch = FakeSwitch()
        channel = self._channel(switch, delay_rate=1.0, max_delay_s=10.0)
        channel.rpc_deadline_s = 0.0001
        with pytest.raises(DeadlineExceeded):
            channel.write(_request(1))
        assert channel.stats.deadline_exceeded == 1

    def test_reset_takes_the_channel_down_until_reconnect(self):
        switch = FakeSwitch()
        channel = self._channel(switch, reset_rate=1.0)
        with pytest.raises(ChannelReset):
            channel.write(_request(1))
        assert not channel.connected
        # Still down: even a clean RPC fails.
        with pytest.raises(ChannelReset):
            channel.read(ReadRequest(table_id=0))
        channel.reconnect()
        assert channel.connected

    def test_crash_commits_a_strict_prefix(self):
        switch = FakeSwitch()
        channel = self._channel(switch, crash_rate=1.0, seed=3)
        with pytest.raises(ChannelReset):
            channel.write(_request(1, 2, 3, 4, 5))
        assert len(switch.entries) < 5
        assert not channel.connected
        assert channel.stats.crashes == 1

    def test_read_faults_have_no_side_effects(self):
        switch = FakeSwitch()
        channel = self._channel(switch, drop_request_rate=1.0)
        with pytest.raises(RequestDropped):
            channel.read(ReadRequest(table_id=0))
        assert switch.write_calls == []


class FlakyService(P4RuntimeService):
    """Raises a scripted sequence of exceptions before succeeding."""

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = list(failures)

    def set_forwarding_pipeline_config(self, p4info):
        return self.inner.set_forwarding_pipeline_config(p4info)

    def _maybe_fail(self, applied_anyway, request=None):
        if self.failures:
            exc = self.failures.pop(0)
            if applied_anyway and request is not None:
                self.inner.write(request)
            raise exc

    def write(self, request):
        # ResponseDropped-style failures apply the write before raising.
        if self.failures:
            exc = self.failures.pop(0)
            if isinstance(exc, (ResponseDropped, DeadlineExceeded)):
                self.inner.write(request)
            raise exc
        return self.inner.write(request)

    def read(self, request):
        if self.failures:
            raise self.failures.pop(0)
        return self.inner.read(request)

    def packet_out(self, packet):
        return self.inner.packet_out(packet)

    def drain_packet_ins(self):
        return self.inner.drain_packet_ins()


class TestRetryingClient:
    def test_retries_dropped_requests_until_success(self):
        switch = FakeSwitch()
        flaky = FlakyService(switch, [RequestDropped("x"), RequestDropped("x")])
        client = RetryingP4RuntimeClient(flaky)
        response = client.write(_request(1))
        assert response.statuses[0].ok
        assert client.retry_stats.retries == 2
        assert client.last_write_info.attempts == 3
        assert not client.last_write_info.ambiguous

    def test_dropped_request_is_not_ambiguous_no_rewrite(self):
        """A first-attempt ALREADY_EXISTS after clean retries is a real
        verdict and must pass through untouched."""
        switch = FakeSwitch()
        switch.write(_request(1))  # pre-install
        flaky = FlakyService(switch, [RequestDropped("x")])
        client = RetryingP4RuntimeClient(flaky)
        response = client.write(_request(1))
        assert response.statuses[0].code is Code.ALREADY_EXISTS
        assert client.retry_stats.idempotent_rescues == 0

    def test_ambiguous_retry_rescues_already_exists(self):
        """Response lost after application: the retried INSERT's
        ALREADY_EXISTS means the first attempt landed — that's success."""
        switch = FakeSwitch()
        flaky = FlakyService(switch, [ResponseDropped("lost")])
        client = RetryingP4RuntimeClient(flaky)
        response = client.write(_request(1))
        assert response.statuses[0].ok
        assert client.last_write_info.ambiguous
        assert client.last_write_info.rescued == 1
        assert client.retry_stats.idempotent_rescues == 1
        assert len(switch.entries) == 1

    def test_ambiguous_retry_rescues_not_found_on_delete(self):
        switch = FakeSwitch()
        switch.write(_request(1))
        flaky = FlakyService(switch, [DeadlineExceeded("slow")])
        client = RetryingP4RuntimeClient(flaky)
        request = WriteRequest(updates=(Update(UpdateType.DELETE, _entry(1)),))
        response = client.write(request)
        assert response.statuses[0].ok
        assert client.retry_stats.idempotent_rescues == 1
        assert switch.entries == {}

    def test_rescue_disabled_by_policy(self):
        switch = FakeSwitch()
        flaky = FlakyService(switch, [ResponseDropped("lost")])
        client = RetryingP4RuntimeClient(
            flaky, RetryPolicy(idempotent_retries=False)
        )
        response = client.write(_request(1))
        assert response.statuses[0].code is Code.ALREADY_EXISTS
        assert client.last_write_info.ambiguous

    def test_reset_triggers_reconnect(self):
        switch = FakeSwitch()
        channel = FaultInjectingChannel(switch, FaultProfile(name="t"))
        # Scripted reset at the channel level: take the session down and
        # let the retry client bring it back.
        channel._connected = False
        client = RetryingP4RuntimeClient(channel)
        response = client.write(_request(1))
        assert response.statuses[0].ok
        assert client.retry_stats.reconnects >= 1
        assert channel.connected

    def test_exhaustion_raises_with_stats(self):
        switch = FakeSwitch()
        flaky = FlakyService(switch, [RequestDropped("x")] * 50)
        client = RetryingP4RuntimeClient(flaky, RetryPolicy(max_attempts=3))
        with pytest.raises(RetriesExhausted):
            client.write(_request(1))
        assert client.retry_stats.exhausted == 1
        assert client.retry_stats.retries == 2

    def test_exhausted_write_reports_every_attempt(self):
        """An abandoned write must not misreport itself as a single
        attempt: last_write_info.attempts carries the real count."""
        switch = FakeSwitch()
        flaky = FlakyService(switch, [ResponseDropped("lost")] * 50)
        client = RetryingP4RuntimeClient(flaky, RetryPolicy(max_attempts=6))
        with pytest.raises(RetriesExhausted):
            client.write(_request(1))
        assert client.last_write_info.attempts == 6
        assert client.last_write_info.ambiguous

    def test_cardinality_mismatch_passes_through_unrewritten(self):
        """A wrong-length status list from a faulty switch must reach the
        oracle untouched — rewriting would rebuild the response and mask
        the batch-cardinality check."""

        class PaddingService(P4RuntimeService):
            """Answers every write with one extra phantom status."""

            def __init__(self, inner):
                self.inner = inner

            def set_forwarding_pipeline_config(self, p4info):
                return self.inner.set_forwarding_pipeline_config(p4info)

            def write(self, request):
                response = self.inner.write(request)
                return WriteResponse(
                    statuses=response.statuses + (Status(Code.INTERNAL, "pad"),)
                )

            def read(self, request):
                return self.inner.read(request)

            def packet_out(self, packet):
                return self.inner.packet_out(packet)

            def drain_packet_ins(self):
                return self.inner.drain_packet_ins()

        switch = FakeSwitch()
        # An ambiguous failure precedes the response, so the idempotency
        # rewrite *would* fire on the retried INSERT's ALREADY_EXISTS.
        flaky = FlakyService(PaddingService(switch), [ResponseDropped("lost")])
        client = RetryingP4RuntimeClient(flaky)
        response = client.write(_request(1))
        assert client.last_write_info.ambiguous
        # Two statuses for one update, exactly as the switch answered.
        assert len(response.statuses) == 2
        assert response.statuses[0].code is Code.ALREADY_EXISTS  # not rescued
        assert response.statuses[1].code is Code.INTERNAL
        assert client.retry_stats.idempotent_rescues == 0
        assert client.last_write_info.rescued == 0

    def test_reset_without_reconnectable_service_counts_no_reconnect(self):
        """A ChannelReset against a service with no reconnect() must not
        claim a reconnect happened."""
        switch = FakeSwitch()
        flaky = FlakyService(switch, [ChannelReset("rst")])
        client = RetryingP4RuntimeClient(flaky)
        response = client.write(_request(1))
        assert response.statuses[0].ok
        assert client.retry_stats.reconnects == 0

    def test_backoff_is_deterministic_and_bounded(self):
        def backoffs():
            client = RetryingP4RuntimeClient(FakeSwitch(), RetryPolicy())
            for attempt in range(1, 8):
                client._backoff(attempt)
            return client.retry_stats.total_backoff_s

        policy = RetryPolicy()
        total = backoffs()
        assert total == backoffs()
        assert total <= 7 * policy.max_backoff_s

    def test_backoff_is_simulated_not_slept_by_default(self):
        slept = []
        client = RetryingP4RuntimeClient(
            FakeSwitch(), RetryPolicy(), sleep=slept.append
        )
        client._backoff(1)
        assert len(slept) == 1
        client_no_sleep = RetryingP4RuntimeClient(FakeSwitch(), RetryPolicy())
        client_no_sleep._backoff(1)
        assert client_no_sleep.retry_stats.total_backoff_s > 0

    def test_read_retries_transport_failures(self):
        switch = FakeSwitch()
        switch.write(_request(1))
        flaky = FlakyService(switch, [ResponseDropped("lost"), ChannelReset("rst")])
        client = RetryingP4RuntimeClient(flaky)
        response = client.read(ReadRequest(table_id=0))
        assert len(response.entries) == 1
        assert client.retry_stats.retries == 2

    def test_deadline_propagates_to_the_channel(self):
        switch = FakeSwitch()
        channel = FaultInjectingChannel(switch, FaultProfile(name="t"))
        RetryingP4RuntimeClient(channel, RetryPolicy(rpc_deadline_s=0.123))
        assert channel.rpc_deadline_s == 0.123

    def test_build_resilient_client_stacks_the_layers(self):
        switch = FakeSwitch()
        client = build_resilient_client(switch, fault_profile="duplicate", seed=4)
        assert isinstance(client, RetryingP4RuntimeClient)
        assert isinstance(client._service, FaultInjectingChannel)
        assert client._service.profile.name == "duplicate"
        # No profile: retry layer wraps the switch directly.
        bare = build_resilient_client(switch)
        assert bare._service is switch

    def test_retried_writes_converge_to_exactly_once_state(self):
        """Under every ambiguous failure mode, retry + idempotency leaves
        the switch exactly as a fault-free run would."""
        for exc in (ResponseDropped("x"), DeadlineExceeded("x")):
            clean = FakeSwitch()
            clean.write(_request(1))
            faulty = FakeSwitch()
            client = RetryingP4RuntimeClient(FlakyService(faulty, [exc]))
            client.write(_request(1))
            assert faulty.entries.keys() == clean.entries.keys()


class TestRealTimeAndDeadlines:
    """The real-clock satellite: injectable sleeper/clock, wall-clock
    write budgets, and the simulated-by-default contract."""

    def test_default_client_is_simulated(self):
        client = RetryingP4RuntimeClient(FakeSwitch())
        assert not client.real_time

    def test_injected_sleeper_marks_the_stack_real_time(self):
        client = RetryingP4RuntimeClient(FakeSwitch(), sleep=lambda s: None)
        assert client.real_time
        channel = FaultInjectingChannel(
            FakeSwitch(), FaultProfile(name="t"), sleeper=lambda s: None
        )
        assert channel.real_time
        # real_time propagates up from a sleeping channel even when the
        # retry layer itself is simulated.
        assert RetryingP4RuntimeClient(channel).real_time

    def test_channel_sleeper_actually_sleeps_injected_delays(self):
        slept = []
        channel = FaultInjectingChannel(
            FakeSwitch(),
            FaultProfile(name="laggy", delay_rate=1.0, max_delay_s=0.01, seed=3),
            rpc_deadline_s=10.0,  # keep delays below the deadline
            sleeper=slept.append,
        )
        channel.write(_request(1))
        assert slept and slept[0] == pytest.approx(channel.stats.simulated_delay_s)

    def test_backoff_sleeps_through_the_injected_sleeper(self):
        slept = []
        switch = FakeSwitch()
        flaky = FlakyService(switch, [RequestDropped("x"), RequestDropped("x")])
        client = RetryingP4RuntimeClient(flaky, sleep=slept.append)
        client.write(_request(1))
        assert len(slept) == 2
        assert sum(slept) == pytest.approx(client.retry_stats.total_backoff_s)

    def test_total_deadline_enforced_against_injected_clock(self):
        """With a monotonic clock wired, the write budget is wall time:
        the client abandons the RPC once the clock passes the budget,
        attempts notwithstanding."""
        now = [0.0]

        def clock():
            now[0] += 0.4  # each observation costs 0.4s of wall time
            return now[0]

        switch = FakeSwitch()
        flaky = FlakyService(switch, [RequestDropped("x")] * 10)
        client = RetryingP4RuntimeClient(
            flaky,
            RetryPolicy(max_attempts=10, total_deadline_s=1.0),
            clock=clock,
        )
        with pytest.raises(RetriesExhausted):
            client.write(_request(1))
        assert client.last_write_info.attempts < 10
        assert client.retry_stats.exhausted == 1

    def test_total_deadline_enforced_against_modeled_wait_without_clock(self):
        """No clock: the same budget is charged against the modeled wait
        (channel delays + backoff), so simulated campaigns enforce it
        without sleeping."""
        switch = FakeSwitch()
        flaky = FlakyService(switch, [RequestDropped("x")] * 10)
        client = RetryingP4RuntimeClient(
            flaky,
            RetryPolicy(
                max_attempts=10, base_backoff_s=0.5, total_deadline_s=1.0
            ),
        )
        with pytest.raises(RetriesExhausted):
            client.write(_request(1))
        assert client.last_write_info.attempts < 10
        assert client.last_write_info.wait_s >= 1.0

    def test_no_budget_keeps_the_historical_attempt_bound(self):
        switch = FakeSwitch()
        flaky = FlakyService(switch, [RequestDropped("x")] * 3)
        client = RetryingP4RuntimeClient(
            flaky, RetryPolicy(max_attempts=10, base_backoff_s=10.0)
        )
        response = client.write(_request(1))
        assert response.statuses[0].ok
        assert client.last_write_info.attempts == 4

    def test_read_honours_the_wall_clock_budget(self):
        now = [0.0]

        def clock():
            now[0] += 0.6
            return now[0]

        switch = FakeSwitch()
        flaky = FlakyService(switch, [ChannelReset("rst")] * 10)
        client = RetryingP4RuntimeClient(
            flaky,
            RetryPolicy(max_attempts=10, total_deadline_s=1.0),
            clock=clock,
        )
        with pytest.raises(RetriesExhausted):
            client.read(ReadRequest(table_id=0))
        assert client.retry_stats.retries < 9

    def test_build_resilient_client_wires_sleep_and_clock_end_to_end(self):
        slept = []
        client = build_resilient_client(
            FakeSwitch(),
            fault_profile="delay",
            seed=2,
            sleep=slept.append,
            clock=lambda: 0.0,
        )
        assert client.real_time
        assert client._service.real_time
        assert client._clock is not None
