"""Fleet campaigns: sharded execution must be behaviourally equivalent to
the sequential catalogue run — same detection verdicts, same incident
dedup keys — with crash-degradation to in-process execution."""

import pytest

from repro.switch.faults import faults_for_stack
from repro.switchv import fleet
from repro.switchv.campaign import CampaignConfig, run_full_campaign, run_soak_campaign
from repro.switchv.fleet import FleetTask, build_fleet_tasks, run_fleet_campaign
from repro.switchv.report import render_fleet_report

# Small but real: every cerberus fault end-to-end, no trivial suite.
CONFIG = CampaignConfig(
    fuzz_writes=3, fuzz_updates_per_write=6, workload_entries=25, run_trivial=False
)


class TestTaskList:
    def test_cross_product_expansion(self):
        tasks = build_fleet_tasks(
            stacks=("pins", "cerberus"),
            profiles=(None, "drop_response"),
            soak_profiles=("chaos",),
            config=CampaignConfig(soak_cycles=2),
        )
        pins = len(faults_for_stack("pins"))
        cerberus = len(faults_for_stack("cerberus"))
        fault_tasks = [t for t in tasks if t.kind == "fault"]
        soak_tasks = [t for t in tasks if t.kind == "soak"]
        assert len(fault_tasks) == 2 * (pins + cerberus)
        assert len(soak_tasks) == 2 * 2  # two stacks x two cycles
        assert {t.profile for t in fault_tasks} == {None, "drop_response"}

    def test_task_list_is_deterministic(self):
        assert build_fleet_tasks() == build_fleet_tasks()

    def test_tasks_are_picklable(self):
        import pickle

        tasks = build_fleet_tasks(config=CONFIG)
        assert pickle.loads(pickle.dumps(tasks)) == tasks


@pytest.fixture(scope="module")
def sequential_cerberus():
    return run_full_campaign("cerberus", CONFIG)


@pytest.fixture(scope="module")
def fleet_cerberus():
    return run_fleet_campaign(stacks=("cerberus",), config=CONFIG, workers=4)


class TestEquivalence:
    def test_same_detection_verdicts(self, sequential_cerberus, fleet_cerberus):
        fleet_outcomes = fleet_cerberus.fault_outcomes("cerberus")
        assert len(fleet_outcomes) == len(sequential_cerberus)
        for seq, par in zip(fleet_outcomes, sequential_cerberus, strict=True):
            assert seq.fault.name == par.fault.name
            assert seq.detected == par.detected, seq.fault.name
            assert seq.detected_by == par.detected_by, seq.fault.name

    def test_same_incident_dedup_keys(self, sequential_cerberus, fleet_cerberus):
        for seq, par in zip(
            fleet_cerberus.fault_outcomes("cerberus"), sequential_cerberus, strict=True
        ):
            assert {i.dedup_key() for i in seq.incidents} == {
                i.dedup_key() for i in par.incidents
            }, seq.fault.name

    def test_merged_ledger_covers_every_task(self, sequential_cerberus, fleet_cerberus):
        merged_keys = {i.dedup_key() for i in fleet_cerberus.incidents}
        per_task_keys = set()
        for outcome in sequential_cerberus:
            per_task_keys |= {i.dedup_key() for i in outcome.incidents}
        assert merged_keys == per_task_keys

    def test_report_is_deterministic_across_runs(self, fleet_cerberus):
        again = run_fleet_campaign(stacks=("cerberus",), config=CONFIG, workers=2)
        assert [r.task for r in again.results] == [
            r.task for r in fleet_cerberus.results
        ]
        assert [r.outcome.detected for r in again.fault_results()] == [
            r.outcome.detected for r in fleet_cerberus.fault_results()
        ]
        assert {i.dedup_key() for i in again.incidents} == {
            i.dedup_key() for i in fleet_cerberus.incidents
        }


class TestDegradation:
    def test_workers_1_never_builds_a_pool(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("workers=1 must not build a process pool")

        monkeypatch.setattr(fleet, "ProcessPoolExecutor", boom)
        tasks = [FleetTask("fault", "cerberus", "bmv2_optional_zero_match")]
        report = run_fleet_campaign(config=CONFIG, workers=1, tasks=tasks)
        assert len(report.results) == 1
        assert report.degraded_tasks == 0

    def test_crashed_workers_degrade_to_in_process(self, monkeypatch):
        """Forked workers that die immediately lose their shards; the
        parent must re-run every task in-process and still produce the
        full, correct report."""
        monkeypatch.setattr(fleet, "_FAULT_INJECT", True)
        tasks = [
            FleetTask("fault", "cerberus", "bmv2_optional_zero_match"),
            FleetTask("fault", "cerberus", "tunnel_delete_leaves_state"),
        ]
        report = run_fleet_campaign(config=CONFIG, workers=2, tasks=tasks)
        assert report.degraded_tasks == len(tasks)
        assert len(report.results) == len(tasks)
        assert all(r.outcome is not None for r in report.results)
        assert all(r.outcome.detected for r in report.results)


class TestSoakSharding:
    def test_sharded_soak_matches_sequential_counters(self):
        config = CampaignConfig(
            fuzz_writes=6, fuzz_updates_per_write=10, seed=5, soak_cycles=2
        )
        sequential = run_soak_campaign("pins", config, fault_profile="chaos")
        report = run_fleet_campaign(
            stacks=("pins",),
            config=config,
            workers=2,
            profiles=(),
            soak_profiles=("chaos",),
        )
        merged = report.merged_soak()
        assert merged is not None
        assert merged.cycles == sequential.cycles
        assert merged.ok == sequential.ok
        assert merged.faults_injected == sequential.faults_injected
        assert merged.retries == sequential.retries
        assert merged.resyncs == sequential.resyncs


class TestTransportProfiles:
    def test_profiled_task_records_a_transport_ledger(self):
        tasks = [
            FleetTask(
                "fault", "cerberus", "bmv2_optional_zero_match", profile="drop_response"
            )
        ]
        report = run_fleet_campaign(config=CONFIG, workers=1, tasks=tasks)
        outcome = report.results[0].outcome
        assert outcome.detected  # the behavioural fault is still found
        assert report.transport is not None
        assert report.transport.any_activity  # the profile actually fired


class TestRendering:
    def test_render_fleet_report(self, fleet_cerberus):
        text = render_fleet_report(fleet_cerberus)
        assert "fleet campaign:" in text
        assert "cerberus: detected" in text
        for fault in faults_for_stack("cerberus"):
            assert fault.name in text
