"""Tests for P4Info catalogue generation."""

from repro.p4.ast import MatchKind
from repro.p4.p4info import ACTION_PREFIX, TABLE_PREFIX, build_p4info


class TestIds:
    def test_table_ids_carry_type_prefix(self, tor_p4info):
        for tid in tor_p4info.tables:
            assert (tid >> 24) == TABLE_PREFIX

    def test_action_ids_carry_type_prefix(self, tor_p4info):
        for aid in tor_p4info.actions:
            assert (aid >> 24) == ACTION_PREFIX

    def test_ids_deterministic_across_builds(self, tor_program):
        a = build_p4info(tor_program)
        b = build_p4info(tor_program)
        assert a.table_ids() == b.table_ids()
        assert a.fingerprint() == b.fingerprint()

    def test_ids_unique(self, tor_p4info):
        assert len(set(tor_p4info.tables)) == len(tor_p4info.tables)
        assert len(set(tor_p4info.actions)) == len(tor_p4info.actions)

    def test_no_zero_ids(self, tor_p4info):
        assert 0 not in tor_p4info.tables
        assert 0 not in tor_p4info.actions


class TestStructure:
    def test_match_fields_are_one_indexed(self, tor_p4info):
        for table in tor_p4info.tables.values():
            assert [mf.id for mf in table.match_fields] == list(
                range(1, len(table.match_fields) + 1)
            )

    def test_match_field_metadata(self, toy_p4info):
        ipv4 = toy_p4info.table_by_name("ipv4_tbl")
        vrf_key = ipv4.match_field_by_name("vrf_id")
        assert vrf_key.bitwidth == 16
        assert vrf_key.match_type is MatchKind.EXACT
        dst = ipv4.match_field_by_name("ipv4_dst")
        assert dst.bitwidth == 32
        assert dst.match_type is MatchKind.LPM

    def test_logical_tables_excluded(self, tor_p4info):
        assert tor_p4info.table_by_name("mirror_port_to_clone_session_tbl") is None

    def test_action_params(self, tor_p4info):
        action = tor_p4info.action_by_name("set_port_and_src_mac")
        assert [p.name for p in action.params] == ["port", "src_mac"]
        assert action.params[0].bitwidth == 16
        assert action.params[1].bitwidth == 48
        assert action.param_by_id(1).name == "port"
        assert action.param_by_id(9) is None

    def test_references_collected(self, tor_p4info):
        assert tor_p4info.references[("ipv4_tbl", "vrf_id")] == ("vrf_tbl", "vrf_id")
        assert tor_p4info.references[("set_nexthop_id", "nexthop_id")] == (
            "nexthop_tbl",
            "nexthop_id",
        )

    def test_entry_restriction_carried(self, tor_p4info):
        vrf = tor_p4info.table_by_name("vrf_tbl")
        assert vrf.entry_restriction == "vrf_id != 0"

    def test_action_profile_wiring(self, tor_p4info):
        wcmp = tor_p4info.table_by_name("wcmp_group_tbl")
        assert wcmp.implementation_id != 0
        profile = tor_p4info.action_profiles[wcmp.implementation_id]
        assert wcmp.id in profile.table_ids
        assert profile.max_group_size == 128

    def test_direct_table_has_no_implementation(self, tor_p4info):
        assert tor_p4info.table_by_name("ipv4_tbl").implementation_id == 0

    def test_requires_priority_mirrors_table(self, tor_p4info):
        assert tor_p4info.table_by_name("acl_ingress_tbl").requires_priority
        assert not tor_p4info.table_by_name("ipv4_tbl").requires_priority


class TestFingerprint:
    def test_fingerprint_differs_across_programs(self, tor_program, wan_program):
        assert build_p4info(tor_program).fingerprint() != build_p4info(wan_program).fingerprint()

    def test_valid_action_ids_for(self, tor_p4info):
        ipv4 = tor_p4info.table_by_name("ipv4_tbl")
        assert tor_p4info.valid_action_ids_for(ipv4.id) == ipv4.action_ids
        assert tor_p4info.valid_action_ids_for(0xDEAD) == ()
