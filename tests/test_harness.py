"""Tests for the SwitchV harness, trivial suite, and fault campaigns."""

import pytest

from repro.fuzzer import FuzzerConfig
from repro.p4.p4info import build_p4info
from repro.switch import FaultRegistry, PinsSwitchStack, ReferenceSwitch
from repro.switch.model_faults import apply_model_faults, is_model_fault
from repro.switchv import SwitchVHarness
from repro.switchv.campaign import CampaignConfig, run_fault_campaign
from repro.switchv.report import Incident, IncidentKind, IncidentLog
from repro.switchv.trivial import TRIVIAL_TESTS, run_trivial_suite
from repro.symbolic.cache import PacketCache
from repro.workloads import baseline_entries, production_like_entries

FAST_FUZZ = FuzzerConfig(num_writes=10, updates_per_write=15, seed=5)


class TestIncidentLog:
    def test_dedup_by_kind_and_summary(self):
        log = IncidentLog()
        for _ in range(3):
            log.report(Incident(IncidentKind.PACKET_IO, "same thing", source="x"))
        assert log.count == 1

    def test_by_kind_and_source(self):
        log = IncidentLog()
        log.report(Incident(IncidentKind.PACKET_IO, "a", source="p4-fuzzer"))
        log.report(Incident(IncidentKind.FORWARDING_MISMATCH, "b", source="p4-symbolic"))
        assert log.by_kind()[IncidentKind.PACKET_IO] == 1
        assert log.by_source() == {"p4-fuzzer": 1, "p4-symbolic": 1}

    def test_extend_deduplicates(self):
        a = IncidentLog()
        b = IncidentLog()
        a.report(Incident(IncidentKind.PACKET_IO, "x", source="s"))
        b.report(Incident(IncidentKind.PACKET_IO, "x", source="s"))
        a.extend(b)
        assert a.count == 1

    def test_bool_and_iteration(self):
        log = IncidentLog()
        assert not log
        log.report(Incident(IncidentKind.PACKET_IO, "x", source="s"))
        assert log and len(list(log)) == 1


class TestFaultFree:
    def test_pins_stack_validates_clean(self, tor_program, tor_p4info):
        stack = PinsSwitchStack(tor_program)
        harness = SwitchVHarness(tor_program, stack)
        report = harness.validate(baseline_entries(tor_p4info), FAST_FUZZ)
        assert report.ok, report.incidents.summary_lines()
        assert report.data_plane.packets_tested > 10

    def test_reference_switch_validates_clean(self, tor_program, tor_p4info):
        switch = ReferenceSwitch(tor_program)
        harness = SwitchVHarness(tor_program, switch)
        report = harness.validate(baseline_entries(tor_p4info), FAST_FUZZ)
        assert report.ok, report.incidents.summary_lines()

    def test_toy_program_on_reference_switch(self, toy_program, toy_p4info):
        from repro.workloads import EntryBuilder

        b = EntryBuilder(toy_p4info)
        entries = [
            b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
            b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
            b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8,
                  "set_nexthop_id", {"nexthop_id": 3}),
        ]
        switch = ReferenceSwitch(toy_program)
        harness = SwitchVHarness(toy_program, switch)
        report = harness.validate_data_plane(entries)
        assert report.ok, report.incidents.summary_lines()

    def test_cerberus_stack_validates_clean(self, cerberus_program, cerberus_p4info):
        stack = PinsSwitchStack(cerberus_program)
        harness = SwitchVHarness(cerberus_program, stack)
        entries = production_like_entries(cerberus_p4info, total=60, seed=4)
        report = harness.validate_data_plane(entries)
        assert report.ok, report.incidents.summary_lines()

    def test_cache_hit_on_second_run(self, tor_program, tor_p4info):
        cache = PacketCache()
        entries = baseline_entries(tor_p4info)
        first = SwitchVHarness(tor_program, PinsSwitchStack(tor_program), cache=cache)
        report1 = first.validate_data_plane(entries)
        second = SwitchVHarness(tor_program, PinsSwitchStack(tor_program), cache=cache)
        report2 = second.validate_data_plane(entries)
        assert not report1.data_plane.cache_hit
        assert report2.data_plane.cache_hit
        assert report2.data_plane.generation_seconds < report1.data_plane.generation_seconds
        assert report2.ok


class TestFaultDetection:
    @pytest.mark.parametrize(
        "fault,expected_kind",
        [
            ("dscp_remark_zero", IncidentKind.FORWARDING_MISMATCH),
            ("lldp_punt", IncidentKind.UNEXPECTED_PACKET_IN),
            ("port_sync_daemon_restart", IncidentKind.PACKET_IO),
            ("packet_out_punted_back", IncidentKind.UNEXPECTED_PACKET_IN),
            ("gnmi_port_disabled", IncidentKind.FORWARDING_MISMATCH),
        ],
    )
    def test_data_plane_fault_detection(self, tor_program, tor_p4info, fault, expected_kind):
        registry = FaultRegistry([fault])
        stack = PinsSwitchStack(tor_program, faults=registry)
        harness = SwitchVHarness(tor_program, stack, simulator_faults=registry)
        entries = production_like_entries(tor_p4info, total=60, seed=3)
        report = harness.validate_data_plane(entries)
        kinds = {i.kind for i in report.incidents}
        assert expected_kind in kinds, report.incidents.summary_lines()

    def test_model_fault_detection(self, tor_program):
        model = apply_model_faults(tor_program, ["model_missing_broadcast_drop"])
        stack = PinsSwitchStack(tor_program)  # switch is correct
        harness = SwitchVHarness(model, stack)
        entries = production_like_entries(build_p4info(model), total=60, seed=3)
        report = harness.validate_data_plane(entries)
        assert not report.ok

    def test_simulator_fault_detection(self, cerberus_program, cerberus_p4info):
        registry = FaultRegistry(["bmv2_optional_zero_match"])
        stack = PinsSwitchStack(cerberus_program)  # switch is correct
        harness = SwitchVHarness(cerberus_program, stack, simulator_faults=registry)
        entries = production_like_entries(cerberus_p4info, total=60, seed=3)
        report = harness.validate_data_plane(entries)
        assert not report.ok  # mismatch traced to the simulator

    def test_update_path_fault_detection(self, tor_program, tor_p4info):
        registry = FaultRegistry(["wcmp_update_removes_members"])
        stack = PinsSwitchStack(tor_program, faults=registry)
        harness = SwitchVHarness(tor_program, stack)
        entries = production_like_entries(tor_p4info, total=60, seed=3)
        report = harness.validate_data_plane(entries)
        assert any(
            "content-preserving modify" in i.summary for i in report.incidents
        ), report.incidents.summary_lines()


class TestModelFaultTransforms:
    def test_removing_ttl_trap(self, tor_program):
        model = apply_model_faults(tor_program, ["ttl1_hw_trap_disagrees"])
        labels = [c.label for c in model.conditionals()]
        assert "ttl_trap" not in labels
        assert "ttl_trap" in [c.label for c in tor_program.conditionals()]

    def test_removing_broadcast_drop(self, tor_program):
        model = apply_model_faults(tor_program, ["model_missing_broadcast_drop"])
        assert "broadcast_drop" not in [c.label for c in model.conditionals()]

    def test_wrong_icmp_field(self, tor_program):
        model = apply_model_faults(tor_program, ["model_wrong_icmp_field"])
        key = model.table("acl_ingress_tbl").key("icmp_type")
        assert key.field.path == "icmp.code"

    def test_rewrite_before_acl_moves_table(self, tor_program):
        model = apply_model_faults(tor_program, ["model_rewrite_before_acl"])

        def order(program):
            from repro.p4.ast import If, TableApply

            result = []

            def walk(block):
                for node in block:
                    if isinstance(node, TableApply):
                        result.append(node.table.name)
                    elif isinstance(node, If):
                        if node.label == "resolution_gate":
                            result.append("<resolution>")
                        walk(node.then_block)
                        walk(node.else_block)

            walk(program.ingress)
            return result

        baseline = order(tor_program)
        faulted = order(model)
        assert baseline.index("acl_ingress_tbl") > baseline.index("<resolution>")
        assert faulted.index("acl_ingress_tbl") < faulted.index("<resolution>")

    def test_unrelated_faults_leave_model_unchanged(self, tor_program):
        model = apply_model_faults(tor_program, ["lldp_punt", "vrf_delete_fails"])
        assert model is tor_program

    def test_is_model_fault(self):
        assert is_model_fault("model_missing_broadcast_drop")
        assert not is_model_fault("lldp_punt")


class TestTrivialSuite:
    def test_fault_free_passes(self, tor_program):
        result = run_trivial_suite(tor_program, PinsSwitchStack(tor_program))
        assert result.all_passed, result.failed
        assert result.passed == list(TRIVIAL_TESTS)

    @pytest.mark.parametrize(
        "fault,expected_first_failure",
        [
            ("p4info_push_failure_swallowed", "table_entry_programming"),
            ("acl_name_capitalization", "table_entry_programming"),
            ("read_ternary_unsupported", "read_all_tables"),
            ("port_sync_daemon_restart", "packet_in"),
            ("packet_out_punted_back", "packet_out"),
        ],
    )
    def test_trivial_attribution(self, tor_program, fault, expected_first_failure):
        stack = PinsSwitchStack(tor_program, faults=FaultRegistry([fault]))
        result = run_trivial_suite(tor_program, stack)
        assert result.first_failure == expected_first_failure, result.failed

    def test_deep_faults_escape_trivial_suite(self, tor_program):
        # The DSCP remark bug needs non-zero-DSCP packets on a forwarded
        # path — the trivial suite never notices.
        stack = PinsSwitchStack(tor_program, faults=FaultRegistry(["dscp_remark_zero"]))
        result = run_trivial_suite(tor_program, stack)
        assert result.all_passed


class TestCampaign:
    def test_campaign_detects_and_attributes(self):
        config = CampaignConfig(
            fuzz_writes=10, fuzz_updates_per_write=15, workload_entries=50, seed=5
        )
        outcome = run_fault_campaign("modify_keeps_old_params", "pins", config)
        assert outcome.detected
        assert "p4-fuzzer" in outcome.detected_by
        assert outcome.fault.component == "P4Runtime Server"

    def test_campaign_runs_trivial_suite(self):
        config = CampaignConfig(
            fuzz_writes=5, fuzz_updates_per_write=10, workload_entries=40, seed=5
        )
        outcome = run_fault_campaign("read_ternary_unsupported", "pins", config)
        assert outcome.trivial_first_failure == "read_all_tables"
