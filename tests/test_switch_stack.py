"""Tests for the PINS switch stack: ASIC, SAI, SyncD, OrchAgent, server."""

import pytest

from repro.bmv2.packet import deparse_packet, make_ipv4_packet
from repro.p4rt import codec
from repro.p4rt.messages import (
    FieldMatch,
    PacketOut,
    ReadRequest,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    ActionInvocation,
)
from repro.p4rt.service import P4RuntimeClient
from repro.p4rt.status import Code
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switch.asic import AclStageConfig, AclKeySpec, AsicError, AsicProfile, AsicSim, RouteTarget
from repro.workloads import EntryBuilder, baseline_entries

E = codec.encode


@pytest.fixture
def programmed_stack(tor_program, tor_p4info, tor_baseline):
    stack = PinsSwitchStack(tor_program)
    client = P4RuntimeClient(stack)
    assert client.set_pipeline(tor_p4info).ok
    from repro.fuzzer.batching import make_batches

    updates = [Update(UpdateType.INSERT, e) for e in tor_baseline]
    for batch in make_batches(tor_p4info, updates):
        response = stack.write(WriteRequest(updates=tuple(batch)))
        assert response.ok, response.statuses
    return stack


class TestAsic:
    def test_vrf_lifecycle(self):
        asic = AsicSim(AsicProfile())
        asic.create_vrf(1)
        with pytest.raises(AsicError) as err:
            asic.create_vrf(1)
        assert err.value.reason == "exists"
        asic.remove_vrf(1)
        with pytest.raises(AsicError) as err:
            asic.remove_vrf(1)
        assert err.value.reason == "not_found"

    def test_vrf_capacity(self):
        asic = AsicSim(AsicProfile(vrf_capacity=2))
        asic.create_vrf(1)
        asic.create_vrf(2)
        with pytest.raises(AsicError) as err:
            asic.create_vrf(3)
        assert err.value.reason == "no_resources"

    def test_route_longest_prefix(self):
        asic = AsicSim(AsicProfile())
        asic.create_vrf(1)
        asic.create_rif(1, 4, 0xAA)
        asic.set_neighbor(1, 1, 0xBB)
        asic.create_nexthop(1, 1, 1)
        asic.create_rif(2, 5, 0xAA)
        asic.set_neighbor(2, 2, 0xBB)
        asic.create_nexthop(2, 2, 2)
        asic.add_route(1, 4, 0x0A000000, 8, RouteTarget("nexthop", nexthop_id=1))
        asic.add_route(1, 4, 0x0A010000, 16, RouteTarget("nexthop", nexthop_id=2))
        asic.configure_acl_stage(AclStageConfig("l3_admit", [], capacity=4))
        asic.acl_add("l3_admit", 1, {}, "admit")
        asic.configure_acl_stage(
            AclStageConfig("pre_ingress", [AclKeySpec("in_port", "standard.ingress_port", 16)], 4)
        )
        asic.acl_add("pre_ingress", 1, {}, "set_vrf", 1)
        result = asic.forward(make_ipv4_packet(0x0A01FFFF), 1)
        assert result.egress_port == 5
        result = asic.forward(make_ipv4_packet(0x0A990000), 1)
        assert result.egress_port == 4

    def test_acl_capacity_and_unknown_key(self):
        asic = AsicSim(AsicProfile())
        asic.configure_acl_stage(
            AclStageConfig("ingress", [AclKeySpec("ttl", "ipv4.ttl", 8)], capacity=1)
        )
        asic.acl_add("ingress", 1, {"ttl": (1, 0xFF)}, "drop")
        with pytest.raises(AsicError) as err:
            asic.acl_add("ingress", 2, {"ttl": (2, 0xFF)}, "drop")
        assert err.value.reason == "no_resources"
        with pytest.raises(AsicError) as err:
            asic.acl_add("ingress", 2, {"bogus": (1, 1)}, "drop")
        assert err.value.reason == "unsupported"

    def test_ttl_trap_and_broadcast_drop(self):
        asic = AsicSim(AsicProfile())
        trapped = asic.forward(make_ipv4_packet(0x0A000001, ttl=1), 1)
        assert trapped.punted and trapped.dropped
        broadcast = asic.forward(make_ipv4_packet(0xFFFFFFFF), 1)
        assert broadcast.dropped and not broadcast.punted

    def test_port_admin_state(self):
        asic = AsicSim(AsicProfile())
        asic.ports_up.discard(1)
        result = asic.forward(make_ipv4_packet(0x0A000001), 1)
        assert result.dropped


class TestServerValidation:
    def test_write_before_config_rejected(self, tor_program):
        stack = PinsSwitchStack(tor_program)
        response = stack.write(
            WriteRequest(updates=(Update(UpdateType.INSERT, TableEntry(1, (), None)),))
        )
        assert response.statuses[0].code is Code.FAILED_PRECONDITION

    def test_duplicate_insert_already_exists(self, programmed_stack, tor_p4info):
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        client = P4RuntimeClient(programmed_stack)
        assert client.insert(entry).code is Code.ALREADY_EXISTS

    def test_delete_nonexistent_not_found(self, programmed_stack, tor_p4info):
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 42}, "NoAction")
        client = P4RuntimeClient(programmed_stack)
        assert client.delete(entry).code is Code.NOT_FOUND

    def test_constraint_violation_rejected(self, programmed_stack, tor_p4info):
        b = EntryBuilder(tor_p4info)
        entry = b.exact("vrf_tbl", {"vrf_id": 0}, "NoAction")  # vrf_id != 0
        client = P4RuntimeClient(programmed_stack)
        assert client.insert(entry).code is Code.INVALID_ARGUMENT

    def test_dangling_reference_rejected(self, programmed_stack, tor_p4info):
        b = EntryBuilder(tor_p4info)
        entry = b.lpm(
            "ipv4_tbl", {"vrf_id": 99}, "ipv4_dst", 0x01000000, 8,
            "set_nexthop_id", {"nexthop_id": 1},
        )
        client = P4RuntimeClient(programmed_stack)
        status = client.insert(entry)
        assert status.code is Code.INVALID_ARGUMENT
        assert "dangling" in status.message

    def test_delete_referenced_entry_rejected(self, programmed_stack, tor_p4info):
        b = EntryBuilder(tor_p4info)
        vrf1 = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        client = P4RuntimeClient(programmed_stack)
        status = client.delete(vrf1)
        assert status.code is Code.FAILED_PRECONDITION

    def test_modify_updates_state(self, programmed_stack, tor_p4info):
        b = EntryBuilder(tor_p4info)
        client = P4RuntimeClient(programmed_stack)
        modified = b.lpm(
            "ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A010000, 16,
            "set_nexthop_id", {"nexthop_id": 2},
        )
        assert client.modify(modified).ok
        read = client.read_table(tor_p4info.table_by_name("ipv4_tbl").id)
        match = [e for e in read if e.match_key() == modified.match_key()]
        assert match and match[0].action == modified.action

    def test_read_by_table_filters(self, programmed_stack, tor_p4info):
        client = P4RuntimeClient(programmed_stack)
        vrf_id = tor_p4info.table_by_name("vrf_tbl").id
        entries = client.read_table(vrf_id)
        assert entries and all(e.table_id == vrf_id for e in entries)

    def test_resource_exhaustion_beyond_guarantee(self, tor_program, tor_p4info):
        stack = PinsSwitchStack(tor_program)
        client = P4RuntimeClient(stack)
        client.set_pipeline(tor_p4info)
        b = EntryBuilder(tor_p4info)
        statuses = [
            client.insert(b.exact("vrf_tbl", {"vrf_id": i}, "NoAction"))
            for i in range(1, 80)
        ]
        codes = {s.code for s in statuses}
        assert Code.OK in codes
        assert Code.RESOURCE_EXHAUSTED in codes
        # The guaranteed size is honoured before any rejection.
        first_reject = next(i for i, s in enumerate(statuses) if not s.ok)
        assert first_reject >= min(64, tor_p4info.table_by_name("vrf_tbl").size)


class TestDataPlane:
    def test_forwarding_matches_route(self, programmed_stack):
        obs = programmed_stack.send_packet(
            deparse_packet(make_ipv4_packet(0x0A030007, ttl=10)), ingress_port=1
        )
        assert obs.egress_port == 3
        assert obs.packet.get("ipv4.ttl") == 9

    def test_punt_canary_reaches_packet_in(self, programmed_stack):
        programmed_stack.drain_packet_ins()
        obs = programmed_stack.send_packet(
            deparse_packet(make_ipv4_packet(0x0AFFFF01)), ingress_port=1
        )
        assert obs.punted
        packet_ins = programmed_stack.drain_packet_ins()
        assert len(packet_ins) == 1

    def test_packet_out_direct(self, programmed_stack):
        payload = deparse_packet(make_ipv4_packet(0x0B000001))
        assert programmed_stack.packet_out(PacketOut(payload=payload, egress_port=6)).ok
        egress = programmed_stack.drain_egress()
        assert egress == [(6, payload)]

    def test_packet_out_submit_to_ingress(self, programmed_stack):
        payload = deparse_packet(make_ipv4_packet(0x0A010077, ttl=5))
        assert programmed_stack.packet_out(
            PacketOut(payload=payload, egress_port=0, submit_to_ingress=True)
        ).ok
        egress = programmed_stack.drain_egress()
        assert len(egress) == 1
        assert egress[0][0] == 1  # 10.1/16 -> nexthop 1 -> port 1


class TestFaultMechanics:
    def test_packet_io_broken_fault(self, tor_program, tor_p4info, tor_baseline):
        stack = PinsSwitchStack(
            tor_program, faults=FaultRegistry(["port_sync_daemon_restart"])
        )
        client = P4RuntimeClient(stack)
        client.set_pipeline(tor_p4info)
        from repro.fuzzer.batching import make_batches

        for batch in make_batches(tor_p4info, [Update(UpdateType.INSERT, e) for e in tor_baseline]):
            stack.write(WriteRequest(updates=tuple(batch)))
        stack.send_packet(deparse_packet(make_ipv4_packet(0x0AFFFF01)), 1)
        assert stack.drain_packet_ins() == []

    def test_lldp_daemon_emits_packet_ins(self, tor_program):
        stack = PinsSwitchStack(tor_program, faults=FaultRegistry(["lldp_punt"]))
        packet_ins = stack.drain_packet_ins()
        assert packet_ins
        assert packet_ins[0].payload[12:14] == b"\x88\xcc"

    def test_daemon_vrf_conflict_occupies_vrf1(self, tor_program, tor_p4info):
        stack = PinsSwitchStack(tor_program, faults=FaultRegistry(["daemon_vrf_conflict"]))
        client = P4RuntimeClient(stack)
        client.set_pipeline(tor_p4info)
        b = EntryBuilder(tor_p4info)
        status = client.insert(b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"))
        assert status.code is Code.ALREADY_EXISTS

    def test_encap_reversal_fault(self, cerberus_program, cerberus_p4info):
        from repro.fuzzer.batching import make_batches
        from repro.workloads import production_like_entries

        stack = PinsSwitchStack(
            cerberus_program, faults=FaultRegistry(["encap_dst_reversed"])
        )
        client = P4RuntimeClient(stack)
        client.set_pipeline(cerberus_p4info)
        entries = production_like_entries(cerberus_p4info, total=60, seed=3)
        for batch in make_batches(cerberus_p4info, [Update(UpdateType.INSERT, e) for e in entries]):
            response = stack.write(WriteRequest(updates=tuple(batch)))
            assert response.ok
        # 10.201/16 routes into tunnel 1 whose dst is 10.0.0.77.
        obs = stack.send_packet(deparse_packet(make_ipv4_packet(0x0AC90001)), 3)
        assert obs.egress_port is not None
        assert obs.packet.get("ipv4.dst_addr") == 0x4D00000A  # byte-reversed

    def test_fault_registry_rejects_unknown(self):
        registry = FaultRegistry()
        with pytest.raises(KeyError):
            registry.enable("not_a_fault")
        registry.enable("lldp_punt")
        assert "lldp_punt" in registry
        registry.disable("lldp_punt")
        assert "lldp_punt" not in registry
