"""Tests for composite @refers_to semantics (the SAI next-hop pattern)."""

import random

import pytest

from repro.bmv2.entries import decode_table_entry
from repro.fuzzer import RequestGenerator
from repro.p4.constraints.refs import AvailableState, Reference, ReferenceGraph
from repro.p4rt import codec
from repro.p4rt.service import P4RuntimeClient
from repro.p4rt.status import Code
from repro.switch import PinsSwitchStack, ReferenceSwitch
from repro.workloads import EntryBuilder, baseline_entries

E = codec.encode


class TestReferenceGraph:
    def test_nexthop_action_has_composite_group(self, tor_p4info):
        refs = ReferenceGraph(tor_p4info)
        groups = refs.action_reference_groups("set_ip_nexthop")
        assert set(groups) == {"router_interface_tbl", "neighbor_tbl"}
        neighbor_pairs = dict(groups["neighbor_tbl"])
        assert neighbor_pairs == {
            "router_interface_id": "router_interface_id",
            "neighbor_id": "neighbor_id",
        }

    def test_references_of_nexthop_entry(self, tor_p4info, tor_builder):
        refs = ReferenceGraph(tor_p4info)
        entry = tor_builder.exact(
            "nexthop_tbl", {"nexthop_id": 9}, "set_ip_nexthop",
            {"router_interface_id": 4, "neighbor_id": 7},
        )
        by_table = {r.target_table: r for r in refs.references_of(entry)}
        assert set(by_table) == {"router_interface_tbl", "neighbor_tbl"}
        assert set(by_table["neighbor_tbl"].pairs) == {
            ("router_interface_id", 4),
            ("neighbor_id", 7),
        }

    def test_available_state_composite_matching(self):
        state = AvailableState()
        state.add("neighbor_tbl", frozenset({("router_interface_id", 1), ("neighbor_id", 1)}))
        state.add("neighbor_tbl", frozenset({("router_interface_id", 2), ("neighbor_id", 2)}))
        pair_ok = Reference("a", "neighbor_tbl", (("router_interface_id", 1), ("neighbor_id", 1)))
        pair_mixed = Reference("a", "neighbor_tbl", (("router_interface_id", 1), ("neighbor_id", 2)))
        assert state.satisfies(pair_ok)
        assert not state.satisfies(pair_mixed)

    def test_available_state_refcounts(self):
        state = AvailableState()
        keyset = frozenset({("vrf_id", 1)})
        state.add("vrf_tbl", keyset)
        state.add("vrf_tbl", keyset)
        state.remove("vrf_tbl", keyset)
        assert ("vrf_tbl", "vrf_id", 1) in state
        state.remove("vrf_tbl", keyset)
        assert ("vrf_tbl", "vrf_id", 1) not in state

    def test_keysets_order_is_canonical(self):
        state = AvailableState()
        for value in (3, 1, 2):
            state.add("t", frozenset({("k", value)}))
        assert state.keysets("t") == [
            frozenset({("k", 1)}),
            frozenset({("k", 2)}),
            frozenset({("k", 3)}),
        ]

    def test_depends_on_composite(self, tor_p4info, tor_builder):
        refs = ReferenceGraph(tor_p4info)
        neighbor = tor_builder.exact(
            "neighbor_tbl", {"router_interface_id": 1, "neighbor_id": 1},
            "set_dst_mac", {"dst_mac": 5},
        )
        nexthop = tor_builder.exact(
            "nexthop_tbl", {"nexthop_id": 1}, "set_ip_nexthop",
            {"router_interface_id": 1, "neighbor_id": 1},
        )
        assert refs.depends_on(nexthop, neighbor)
        other_neighbor = tor_builder.exact(
            "neighbor_tbl", {"router_interface_id": 3, "neighbor_id": 3},
            "set_dst_mac", {"dst_mac": 5},
        )
        assert not refs.depends_on(nexthop, other_neighbor)


class TestEndToEnd:
    @pytest.mark.parametrize("switch_cls", [PinsSwitchStack, ReferenceSwitch])
    def test_mixed_pair_rejected_valid_pair_accepted(
        self, switch_cls, tor_program, tor_p4info, tor_baseline
    ):
        from repro.fuzzer.batching import make_batches, order_inserts
        from repro.p4rt.messages import Update, UpdateType, WriteRequest

        switch = switch_cls(tor_program)
        client = P4RuntimeClient(switch)
        client.set_pipeline(tor_p4info)
        for batch in make_batches(
            tor_p4info,
            order_inserts(tor_p4info, [Update(UpdateType.INSERT, e) for e in tor_baseline]),
        ):
            switch.write(WriteRequest(updates=tuple(batch)))
        b = EntryBuilder(tor_p4info)
        mixed = b.exact(
            "nexthop_tbl", {"nexthop_id": 99}, "set_ip_nexthop",
            {"router_interface_id": 1, "neighbor_id": 2},  # both exist, pair doesn't
        )
        assert client.insert(mixed).code is Code.INVALID_ARGUMENT
        valid = b.exact(
            "nexthop_tbl", {"nexthop_id": 99}, "set_ip_nexthop",
            {"router_interface_id": 2, "neighbor_id": 2},
        )
        assert client.insert(valid).ok

    def test_generator_plans_consistent_pairs(self, tor_p4info):
        gen = RequestGenerator(tor_p4info, random.Random(4))
        b = EntryBuilder(tor_p4info)
        # Install RIFs 1..3 and neighbors only for the matching pairs.
        for i in (1, 2, 3):
            gen.state.install(
                b.exact("router_interface_tbl", {"router_interface_id": i},
                        "set_port_and_src_mac", {"port": i, "src_mac": i})
            )
            gen.state.install(
                b.exact("neighbor_tbl", {"router_interface_id": i, "neighbor_id": i * 10},
                        "set_dst_mac", {"dst_mac": i})
            )
        nexthop_table = tor_p4info.table_by_name("nexthop_tbl")
        for _ in range(40):
            update = gen.generate_insert(table_id=nexthop_table.id)
            assert update is not None
            decoded = decode_table_entry(tor_p4info, update.entry)
            params = decoded.action.param_map()
            assert params["neighbor_id"] == params["router_interface_id"] * 10