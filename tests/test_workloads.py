"""Tests for workload generation: installability and structure."""

import pytest

from repro.bmv2.entries import decode_table_entry
from repro.fuzzer.batching import make_batches, order_inserts
from repro.p4.constraints import parse_constraint
from repro.p4.constraints.evaluator import evaluate_constraint
from repro.p4rt.messages import Update, UpdateType, WriteRequest
from repro.switch import PinsSwitchStack, ReferenceSwitch
from repro.workloads import baseline_entries, production_like_entries


def install_all(switch, p4info, entries):
    assert switch.set_forwarding_pipeline_config(p4info).ok
    failures = []
    updates = order_inserts(p4info, [Update(UpdateType.INSERT, e) for e in entries])
    for batch in make_batches(p4info, updates):
        response = switch.write(WriteRequest(updates=tuple(batch)))
        failures.extend(
            (u.entry, s) for u, s in zip(batch, response.statuses, strict=False) if not s.ok
        )
    return failures


class TestBaseline:
    def test_installs_on_pins_stack(self, tor_program, tor_p4info):
        failures = install_all(
            PinsSwitchStack(tor_program), tor_p4info, baseline_entries(tor_p4info)
        )
        assert failures == []

    def test_installs_on_reference_switch(self, tor_program, tor_p4info):
        failures = install_all(
            ReferenceSwitch(tor_program), tor_p4info, baseline_entries(tor_p4info)
        )
        assert failures == []

    def test_all_entries_decode(self, tor_p4info):
        for entry in baseline_entries(tor_p4info):
            decode_table_entry(tor_p4info, entry)

    def test_constraint_compliance(self, tor_p4info):
        for entry in baseline_entries(tor_p4info):
            table = tor_p4info.tables[entry.table_id]
            if not table.entry_restriction:
                continue
            decoded = decode_table_entry(tor_p4info, entry)
            expr = parse_constraint(table.entry_restriction)
            assert evaluate_constraint(expr, decoded.key_values()), entry


class TestProductionLike:
    @pytest.mark.parametrize("total", [50, 150, 400])
    def test_size_is_approximate(self, tor_p4info, total):
        entries = production_like_entries(tor_p4info, total=total, seed=1)
        assert abs(len(entries) - total) <= total * 0.15 + 10

    def test_deterministic(self, tor_p4info):
        a = production_like_entries(tor_p4info, total=100, seed=9)
        b = production_like_entries(tor_p4info, total=100, seed=9)
        assert [e.match_key() for e in a] == [e.match_key() for e in b]

    def test_seeds_differ(self, tor_p4info):
        a = production_like_entries(tor_p4info, total=100, seed=1)
        b = production_like_entries(tor_p4info, total=100, seed=2)
        assert {e.match_key() for e in a} != {e.match_key() for e in b}

    @pytest.mark.parametrize(
        "program_fixture", ["tor_p4info", "wan_p4info", "cerberus_p4info"]
    )
    def test_installs_cleanly_on_every_role(self, request, program_fixture):
        p4info = request.getfixturevalue(program_fixture)
        builder = {
            "tor_p4info": "tor_program",
            "wan_p4info": "wan_program",
            "cerberus_p4info": "cerberus_program",
        }[program_fixture]
        program = request.getfixturevalue(builder)
        entries = production_like_entries(p4info, total=200, seed=4)
        failures = install_all(PinsSwitchStack(program), p4info, entries)
        assert failures == [], failures[:3]

    def test_contains_structural_variety(self, tor_p4info):
        entries = production_like_entries(tor_p4info, total=200, seed=4)
        tables = {e.table_id for e in entries}
        names = {
            tor_p4info.tables[t].name for t in tables if t in tor_p4info.tables
        }
        assert {
            "vrf_tbl",
            "ipv4_tbl",
            "wcmp_group_tbl",
            "nexthop_tbl",
            "router_interface_tbl",
            "acl_ingress_tbl",
            "mirror_session_tbl",
        } <= names

    def test_cerberus_has_tunnel_entries(self, cerberus_p4info):
        entries = production_like_entries(cerberus_p4info, total=100, seed=4)
        names = {
            cerberus_p4info.tables[e.table_id].name
            for e in entries
            if e.table_id in cerberus_p4info.tables
        }
        assert {"tunnel_tbl", "decap_tbl"} <= names

    def test_all_constraints_satisfied(self, wan_p4info):
        for entry in production_like_entries(wan_p4info, total=200, seed=7):
            table = wan_p4info.tables[entry.table_id]
            if not table.entry_restriction:
                continue
            decoded = decode_table_entry(wan_p4info, entry)
            expr = parse_constraint(table.entry_restriction)
            assert evaluate_constraint(expr, decoded.key_values()), entry
