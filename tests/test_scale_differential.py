"""Differential identity: indexed/incremental state paths vs linear baselines.

The production-scale bugfixes (per-table counters, reverse-reference
indices, table lookup indices, decode caches, per-table read views) are
behaviour-preserving by construction; these tests prove it empirically —
seeded random campaigns, direct write/read/packet sequences, and the whole
fault catalogue must produce byte-identical outcomes in both modes.
"""

import random

import pytest

from repro.bmv2.interpreter import Interpreter, SeededHash
from repro.bmv2.packet import deparse_packet, make_ipv4_packet
from repro.fuzzer.fuzzer import FuzzerConfig, P4Fuzzer
from repro.fuzzer.oracle import Oracle
from repro.p4rt.messages import (
    ReadRequest,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.status import Status
from repro.switch import PinsSwitchStack, ReferenceSwitch
from repro.switch.faults import FAULT_CATALOG, FaultRegistry
from repro.switch.p4rt_server import P4RuntimeServer
from repro.switchv.report import IncidentKind
from repro.workloads import EntryBuilder, crm_fill_updates, production_like_entries

MODELS = ["toy", "tor", "wan", "cerberus"]


def _incident_tuples(log):
    return [
        (i.kind, i.summary, i.expected, i.observed, i.table_id, i.table_name)
        for i in log.incidents
    ]


def _set_modes(monkeypatch, on: bool) -> None:
    monkeypatch.setattr(Oracle, "default_incremental", on)
    monkeypatch.setattr(ReferenceSwitch, "default_indexed", on)
    monkeypatch.setattr(P4RuntimeServer, "default_indexed", on)


def _probe_packets(count: int = 24):
    rng = random.Random(404)
    packets = []
    for index in range(count):
        packets.append(
            (
                deparse_packet(
                    make_ipv4_packet(
                        dst_addr=rng.getrandbits(32),
                        src_addr=rng.getrandbits(32),
                        ttl=rng.choice([1, 33, 64]),
                    )
                ),
                1 + index % 4,
            )
        )
    return packets


@pytest.mark.parametrize("model", MODELS)
def test_fuzz_campaign_identity_reference_switch(model, request, monkeypatch):
    """Seeded campaigns against the reference switch: incidents, adopted
    state, reads, and forwarding are identical in both modes."""
    program = request.getfixturevalue(f"{model}_program")
    p4info = request.getfixturevalue(f"{model}_p4info")
    outcomes = {}
    for mode in (True, False):
        _set_modes(monkeypatch, mode)
        switch = ReferenceSwitch(program)
        fuzzer = P4Fuzzer(
            p4info,
            switch,
            FuzzerConfig(num_writes=8, updates_per_write=12, seed=99),
        )
        result = fuzzer.run()
        outcomes[mode] = (result, switch)

    fast, fast_switch = outcomes[True]
    slow, slow_switch = outcomes[False]
    assert _incident_tuples(fast.incidents) == _incident_tuples(slow.incidents)
    assert fast.final_entries == slow.final_entries
    assert (
        fast_switch.read(ReadRequest()).entries
        == slow_switch.read(ReadRequest()).entries
    )
    for tid in p4info.table_ids():
        assert (
            fast_switch.read(ReadRequest(table_id=tid)).entries
            == slow_switch.read(ReadRequest(table_id=tid)).entries
        ), p4info.tables[tid].name
    for payload, port in _probe_packets():
        a = fast_switch.send_packet(payload, ingress_port=port)
        b = slow_switch.send_packet(payload, ingress_port=port)
        assert (a.egress_port, a.punted, a.packet, a.mirror_copies) == (
            b.egress_port,
            b.punted,
            b.packet,
            b.mirror_copies,
        )
    assert fast_switch.drain_packet_ins() == slow_switch.drain_packet_ins()


def test_direct_write_status_identity(tor_program, tor_p4info, monkeypatch):
    """A production fill + churn replay: every per-update status (code and
    message) matches between the indexed and linear reference switch."""
    entries = production_like_entries(tor_p4info, 260, seed=5)
    routes = [e for e in entries if e.table_id == tor_p4info.table_by_name("ipv4_tbl").id]
    updates = crm_fill_updates(entries, churn=120, seed=6, victims=routes)

    def run(mode):
        _set_modes(monkeypatch, mode)
        switch = ReferenceSwitch(tor_program)
        assert switch.set_forwarding_pipeline_config(tor_p4info).ok
        statuses = []
        for update in updates:
            response = switch.write(WriteRequest(updates=(update,)))
            statuses.append(
                (response.statuses[0].code, response.statuses[0].message)
            )
        return statuses, switch

    fast_statuses, fast_switch = run(True)
    slow_statuses, slow_switch = run(False)
    assert fast_statuses == slow_statuses
    assert (
        fast_switch.read(ReadRequest()).entries
        == slow_switch.read(ReadRequest()).entries
    )


def test_direct_write_status_identity_pins_stack(tor_program, tor_p4info, monkeypatch):
    entries = production_like_entries(tor_p4info, 180, seed=9)
    updates = crm_fill_updates(entries, churn=60, seed=10)

    def run(mode):
        _set_modes(monkeypatch, mode)
        stack = PinsSwitchStack(tor_program)
        assert stack.set_forwarding_pipeline_config(tor_p4info).ok
        statuses = []
        for update in updates:
            response = stack.write(WriteRequest(updates=(update,)))
            statuses.append(
                (response.statuses[0].code, response.statuses[0].message)
            )
        return statuses, stack

    fast_statuses, fast_stack = run(True)
    slow_statuses, slow_stack = run(False)
    assert fast_statuses == slow_statuses
    assert (
        fast_stack.read(ReadRequest()).entries == slow_stack.read(ReadRequest()).entries
    )
    for tid in tor_p4info.table_ids():
        assert (
            fast_stack.read(ReadRequest(table_id=tid)).entries
            == slow_stack.read(ReadRequest(table_id=tid)).entries
        )


@pytest.mark.parametrize("fault", sorted(f.name for f in FAULT_CATALOG))
def test_fault_catalogue_identity(fault, tor_program, tor_p4info, monkeypatch):
    """Every catalogued fault produces the same incidents and the same
    adopted state whether the oracle/server bookkeeping is incremental or
    linear — the index mirrors the store, bugs included."""
    outcomes = {}
    for mode in (True, False):
        _set_modes(monkeypatch, mode)
        stack = PinsSwitchStack(tor_program, faults=FaultRegistry([fault]))
        fuzzer = P4Fuzzer(
            tor_p4info,
            stack,
            FuzzerConfig(num_writes=5, updates_per_write=10, seed=31),
        )
        result = fuzzer.run()
        outcomes[mode] = (
            _incident_tuples(result.incidents),
            result.final_entries,
        )
    assert outcomes[True] == outcomes[False]


def test_interpreter_index_matches_linear_scan(tor_program, tor_p4info):
    """The table index yields the same winner as the linear scan on every
    probe — including under the seeded simulator fault knobs."""
    switch = ReferenceSwitch(tor_program, indexed=False)
    assert switch.set_forwarding_pipeline_config(tor_p4info).ok
    for entry in production_like_entries(tor_p4info, 400, seed=21):
        switch.write(WriteRequest(updates=(Update(UpdateType.INSERT, entry),)))
    state = switch._state()
    assert any(len(v) > Interpreter.INDEX_MIN_ENTRIES for v in state.values())

    rng = random.Random(77)
    for optional_zero, lpm_short in [(False, False), (True, False), (False, True)]:
        indexed = Interpreter(
            tor_program,
            state,
            SeededHash(seed=3),
            optional_absent_matches_zero=optional_zero,
            lpm_shortest_prefix_wins=lpm_short,
        )
        linear = Interpreter(
            tor_program,
            state,
            SeededHash(seed=3),
            optional_absent_matches_zero=optional_zero,
            lpm_shortest_prefix_wins=lpm_short,
        )
        linear.INDEX_MIN_ENTRIES = 10**9  # instance override: never index
        for _ in range(40):
            packet = make_ipv4_packet(
                dst_addr=rng.getrandbits(32),
                src_addr=rng.getrandbits(32),
                ttl=rng.choice([1, 33, 64]),
            )
            a = indexed.run(packet.copy(), ingress_port=1)
            b = linear.run(packet.copy(), ingress_port=1)
            assert a.behavior_signature() == b.behavior_signature()
            assert a.trace.table_hits == b.trace.table_hits
        if not (optional_zero or lpm_short):
            # (The fault knobs can gate routing entirely, in which case the
            # big table is never applied and no index is ever needed.)
            assert indexed._index_cache, "indexed interpreter never built an index"


# ----------------------------------------------------------------------
# Regression tests for the satellite correctness fixes
# ----------------------------------------------------------------------


def _readback_kinds(log):
    return [
        i.summary for i in log.incidents if i.kind is IncidentKind.READBACK_MISMATCH
    ]


def test_readback_suppression_is_reported(toy_p4info):
    """More than five missing/extra read-back entries used to be silently
    capped at five incidents; now one summarizing incident carries the
    suppressed count."""
    b = EntryBuilder(toy_p4info)
    entries = [b.exact("vrf_tbl", {"vrf_id": vid}, "NoAction") for vid in range(1, 10)]

    oracle = Oracle(toy_p4info)
    updates = [Update(UpdateType.INSERT, e) for e in entries]
    ok = WriteResponse(statuses=tuple(Status() for _ in updates))
    log = oracle.judge_batch(updates, ok, read_back=[])
    summaries = _readback_kinds(log)
    # The per-entry incidents share one summary, so the log dedups them;
    # without the summarizing incident the total count would be invisible.
    assert "entry missing from read-back of vrf_tbl" in summaries
    assert "4 further entries missing from read-back (suppressed)" in summaries

    oracle = Oracle(toy_p4info)
    log = oracle.judge_batch([], WriteResponse(statuses=()), read_back=entries)
    summaries = _readback_kinds(log)
    assert "unexpected entry in read-back of vrf_tbl" in summaries
    assert "4 further unexpected entries in read-back (suppressed)" in summaries
    # The observed state is adopted in full regardless of suppression.
    assert len(oracle.expected) == len(entries)


def test_readback_suppression_identity_across_modes(toy_p4info):
    b = EntryBuilder(toy_p4info)
    entries = [b.exact("vrf_tbl", {"vrf_id": vid}, "NoAction") for vid in range(1, 12)]
    logs = {}
    for mode in (True, False):
        oracle = Oracle(toy_p4info, incremental=mode)
        updates = [Update(UpdateType.INSERT, e) for e in entries]
        ok = WriteResponse(statuses=tuple(Status() for _ in updates))
        logs[mode] = _incident_tuples(oracle.judge_batch(updates, ok, read_back=[]))
    assert logs[True] == logs[False]


def test_seeded_hash_fields_cannot_alias():
    """Minimal-length framing made distinct field tuples collide (e.g.
    src=0x0102,dst=0x03 vs src=0x01,dst=0x0203); declared-width framing
    keeps them apart."""
    h = SeededHash(seed=1, fields=("ipv4.src_addr", "ipv4.dst_addr"))
    a = h.value("x", {"ipv4.src_addr": 0x0102, "ipv4.dst_addr": 0x03}, 32)
    b = h.value("x", {"ipv4.src_addr": 0x01, "ipv4.dst_addr": 0x0203}, 32)
    assert a != b

    # Unknown-width fields fall back to length-prefixed framing, which is
    # alias-free too.
    h = SeededHash(seed=1, fields=("meta.a", "meta.b"))
    a = h.value("x", {"meta.a": 0x0102, "meta.b": 0}, 32)
    b = h.value("x", {"meta.a": 0x01, "meta.b": 0x02}, 32)
    assert a != b


def test_seeded_hash_binds_widths_from_program(tor_program):
    h = SeededHash(seed=1, fields=("meta.vrf_id",))
    assert "meta.vrf_id" not in h.field_widths
    h.bind_widths(tor_program.field_width)
    assert h.field_widths["meta.vrf_id"] == tor_program.field_width("meta.vrf_id")


def test_per_table_read_order_preserved(tor_program, tor_p4info):
    """Single-table reads keep store order: MODIFY stays in place,
    delete + re-insert moves to the back — identically in both modes."""
    b = EntryBuilder(tor_p4info)
    vrf_ids = [4, 5, 6]
    switches = {}
    for mode in (True, False):
        switch = ReferenceSwitch(tor_program, indexed=mode)
        assert switch.set_forwarding_pipeline_config(tor_p4info).ok
        for vid in vrf_ids:
            entry = b.exact("vrf_tbl", {"vrf_id": vid}, "NoAction")
            assert switch.write(
                WriteRequest(updates=(Update(UpdateType.INSERT, entry),))
            ).statuses[0].ok
        # Modify the middle entry (same action: position must not change),
        # then delete + re-insert the first (must move to the back).
        middle = b.exact("vrf_tbl", {"vrf_id": 5}, "NoAction")
        assert switch.write(
            WriteRequest(updates=(Update(UpdateType.MODIFY, middle),))
        ).statuses[0].ok
        first = b.exact("vrf_tbl", {"vrf_id": 4}, "NoAction")
        assert switch.write(
            WriteRequest(updates=(Update(UpdateType.DELETE, first),))
        ).statuses[0].ok
        assert switch.write(
            WriteRequest(updates=(Update(UpdateType.INSERT, first),))
        ).statuses[0].ok
        switches[mode] = switch

    tid = tor_p4info.table_by_name("vrf_tbl").id
    fast = switches[True].read(ReadRequest(table_id=tid)).entries
    slow = switches[False].read(ReadRequest(table_id=tid)).entries
    assert fast == slow
    assert [e.matches[0].value for e in fast] == [
        e.matches[0].value for e in slow
    ]
    assert len(fast) == 3
