"""Differential identity at the SMT layer: optimized vs legacy pipelines.

The scale-differential suite (:mod:`tests.test_scale_differential`) proves
the indexed state paths behaviour-preserving; this file extends the same
approach one layer down.  The structural encoder + modern kernel must be
observationally identical to the retained Tseitin encoder + legacy kernel
end to end: the same generated packets (byte for byte), the same uncovered
goals, the same data-plane incidents, and the same fuzzer incident
fingerprints across the whole fault catalogue.  Canonical witness
extraction makes this possible — every artifact is a pure function of the
formula, never of solver heuristics.
"""

import pytest

from repro.bmv2.entries import decode_table_entry
from repro.bmv2.packet import deparse_packet
from repro.fuzzer.fuzzer import FuzzerConfig, P4Fuzzer
from repro.smt.pool import SolverPool
from repro.switch import PinsSwitchStack, ReferenceSwitch
from repro.switch.faults import FAULT_CATALOG, FaultRegistry
from repro.switchv.harness import SwitchVHarness
from repro.symbolic import PacketGenerator
from repro.symbolic.coverage import CoverageMode
from repro.workloads import EntryBuilder, baseline_entries, production_like_entries

MODELS = ["toy", "tor", "wan", "cerberus"]

# (encoder, kernel) per pipeline; "optimized" is the repo default.
PIPELINES = {
    "optimized": ("structural", "modern"),
    "legacy": ("tseitin", "legacy"),
}


def _pool(pipeline):
    encoder, kernel = PIPELINES[pipeline]
    return SolverPool(encoder=encoder, kernel=kernel)


def _entries_for(model, p4info):
    if model == "toy":
        # The toy router has none of the SAI tables baseline_entries fills.
        b = EntryBuilder(p4info)
        return [
            b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
            b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
            b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8,
                  "set_nexthop_id", {"nexthop_id": 3}),
            b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 16,
                  "set_nexthop_id", {"nexthop_id": 7}),
        ]
    return baseline_entries(p4info)


def _decode_state(p4info, entries):
    state = {}
    for entry in entries:
        decoded = decode_table_entry(p4info, entry)
        state.setdefault(decoded.table_name, []).append(decoded)
    return state


def _packet_tuples(packets):
    return [
        (p.goal, p.profile, p.ingress_port, deparse_packet(p.packet))
        for p in packets
    ]


def _incident_tuples(log):
    return [
        (i.kind, i.summary, i.expected, i.observed, i.table_id, i.table_name)
        for i in log.incidents
    ]


@pytest.mark.parametrize("model", MODELS)
def test_packet_generation_identity(model, request):
    """Cold entry-coverage generation: identical packets and uncovered
    goals from both pipelines, on every shipped model."""
    program = request.getfixturevalue(f"{model}_program")
    p4info = request.getfixturevalue(f"{model}_p4info")
    state = _decode_state(p4info, _entries_for(model, p4info))
    outcomes = {}
    for pipeline in PIPELINES:
        generator = PacketGenerator(program, state, solver_pool=_pool(pipeline))
        result = generator.generate(CoverageMode.ENTRY)
        outcomes[pipeline] = (
            _packet_tuples(result.packets),
            list(result.uncovered),
            result.stats.goals_covered,
            result.stats.goals_unsatisfiable,
        )
    assert outcomes["optimized"] == outcomes["legacy"]


def test_packet_generation_identity_across_states(tor_program, tor_p4info):
    """Warm-pool reuse: after a state edit, the optimized pipeline's
    incremental re-solve yields exactly the legacy pipeline's packets."""
    base = production_like_entries(tor_p4info, 60, seed=3)
    outcomes = {}
    for pipeline in PIPELINES:
        pool = _pool(pipeline)
        states = [
            _decode_state(tor_p4info, base),
            _decode_state(tor_p4info, base[:-8]),  # drop a few entries
        ]
        runs = []
        for state in states:
            generator = PacketGenerator(tor_program, state, solver_pool=pool)
            result = generator.generate(CoverageMode.ENTRY)
            runs.append((_packet_tuples(result.packets), tuple(result.uncovered)))
        outcomes[pipeline] = runs
    assert outcomes["optimized"] == outcomes["legacy"]


@pytest.mark.parametrize("model", ["toy", "tor"])
def test_data_plane_incident_identity(model, request):
    """End-to-end harness runs disagree with a switch identically under
    both pipelines (the harness pool is injected via ``solver_pool=``)."""
    program = request.getfixturevalue(f"{model}_program")
    p4info = request.getfixturevalue(f"{model}_p4info")
    entries = _entries_for(model, p4info)
    outcomes = {}
    for pipeline in PIPELINES:
        switch = ReferenceSwitch(program)
        harness = SwitchVHarness(program, switch, solver_pool=_pool(pipeline))
        report = harness.validate_data_plane(entries)
        stats = report.data_plane
        outcomes[pipeline] = (
            _incident_tuples(report.incidents),
            stats.goals_total,
            stats.goals_covered,
            stats.packets_tested,
        )
    assert outcomes["optimized"] == outcomes["legacy"]


@pytest.mark.parametrize("fault", sorted(f.name for f in FAULT_CATALOG))
def test_fuzzer_fingerprint_identity_across_fault_catalogue(
    fault, tor_program, tor_p4info
):
    """Constraint-aware fuzz campaigns (the fuzzer path that actually
    queries the SMT layer for table-key models) produce identical incident
    fingerprints and adopted state for every catalogued fault."""
    outcomes = {}
    for pipeline in PIPELINES:
        stack = PinsSwitchStack(tor_program, faults=FaultRegistry([fault]))
        fuzzer = P4Fuzzer(
            tor_p4info,
            stack,
            FuzzerConfig(
                num_writes=4,
                updates_per_write=8,
                seed=47,
                constraint_aware=True,
            ),
            solver_pool=_pool(pipeline),
        )
        result = fuzzer.run()
        outcomes[pipeline] = (
            _incident_tuples(result.incidents),
            result.final_entries,
        )
    assert outcomes["optimized"] == outcomes["legacy"]
