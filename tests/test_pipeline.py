"""The pipelined fuzzing loop's soundness bar.

`pipeline_depth=1` must reproduce the sequential loop byte for byte —
same incident stream (dedup keys, in order), same counters, same final
state, same modeled transport waits — across every fault profile.  At
depth > 1 pipelining may change *when* the oracle judges, never *what*
it concludes: on a clean transport the model-incident dedup-key set is
unchanged, and under faults there are still zero phantoms.
"""

import dataclasses

import pytest

from repro.fuzzer import FuzzerConfig, P4Fuzzer, WriteScheduler
from repro.fuzzer.batching import make_batches
from repro.p4rt.channel import FaultInjectingChannel, resolve_profile
from repro.p4rt.messages import Update, UpdateType
from repro.p4rt.retry import build_resilient_client
from repro.switch import PinsSwitchStack

CONFIG = FuzzerConfig(num_writes=15, updates_per_write=20, seed=21)

PROFILES = [None, "drop_request", "drop_response", "duplicate", "delay", "reset", "crash", "chaos"]


def _run(tor_program, tor_p4info, profile_name, **overrides):
    stack = PinsSwitchStack(tor_program)
    switch = stack
    channel = None
    if profile_name is not None:
        channel = FaultInjectingChannel(stack, resolve_profile(profile_name, seed=13))
        switch = channel
    client = build_resilient_client(switch)
    config = dataclasses.replace(CONFIG, **overrides)
    fuzzer = P4Fuzzer(tor_p4info, client, config)
    return fuzzer.run(), channel


def _fingerprint(result):
    """Everything the sequential and depth-1 pipelined loops must agree on."""
    return {
        "incident_keys": [i.dedup_key() for i in result.incidents],
        "final_state": sorted(e.match_key() for e in result.final_entries),
        "modified": sorted(e.match_key() for e in result.modified_entries),
        "updates_sent": result.updates_sent,
        "writes_sent": result.writes_sent,
        "valid": result.valid_updates,
        "invalid": result.invalid_updates,
        "mutations": result.mutation_counts,
        "transport": dataclasses.asdict(result.transport),
    }


# ----------------------------------------------------------------------
# Depth 1: byte-identical to the sequential loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("profile", PROFILES)
def test_depth1_pipeline_is_byte_identical_to_sequential(tor_program, tor_p4info, profile):
    sequential, _ = _run(tor_program, tor_p4info, profile)
    pipelined, channel = _run(tor_program, tor_p4info, profile, force_pipeline=True)

    assert _fingerprint(pipelined) == _fingerprint(sequential)
    assert pipelined.transport_wait_seconds == pytest.approx(
        sequential.transport_wait_seconds
    )
    # The windowed scheduler really ran (and degenerated to depth 1).
    assert pipelined.pipeline is not None
    assert pipelined.pipeline.depth == 1
    assert pipelined.pipeline.max_in_flight == 1
    # Same RPC stream — the fault channel rolled identically.
    if channel is not None:
        assert channel.stats.faults_injected > 0


def test_depth1_pipeline_identical_with_sparse_read_backs(tor_program, tor_p4info):
    sequential, _ = _run(tor_program, tor_p4info, "chaos", read_back_every=3)
    pipelined, _ = _run(
        tor_program, tor_p4info, "chaos", read_back_every=3, force_pipeline=True
    )
    assert _fingerprint(pipelined) == _fingerprint(sequential)


# ----------------------------------------------------------------------
# Depth > 1: pipelining may not change conclusions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("depth", [2, 4, 8])
def test_deep_pipeline_clean_transport_changes_no_conclusions(
    tor_program, tor_p4info, depth
):
    sequential, _ = _run(tor_program, tor_p4info, None)
    pipelined, _ = _run(tor_program, tor_p4info, None, pipeline_depth=depth)

    base_keys = {i.dedup_key() for i in sequential.incidents.model_only()}
    deep_keys = {i.dedup_key() for i in pipelined.incidents.model_only()}
    assert deep_keys == base_keys, pipelined.incidents.summary_lines()
    # A healthy stack: no transport ledger either.
    assert not pipelined.transport.any_activity
    assert pipelined.pipeline.max_in_flight > 1
    assert pipelined.pipeline.read_backs_coalesced > 0


@pytest.mark.parametrize("profile", ["drop_response", "delay", "chaos"])
def test_deep_pipeline_stays_phantom_free_under_faults(tor_program, tor_p4info, profile):
    clean, _ = _run(tor_program, tor_p4info, None)
    deep, channel = _run(tor_program, tor_p4info, profile, pipeline_depth=4)

    assert channel.stats.faults_injected > 0
    base_keys = {i.dedup_key() for i in clean.incidents.model_only()}
    assert {
        i.dedup_key() for i in deep.incidents.model_only()
    } == base_keys, deep.incidents.summary_lines()


@pytest.mark.parametrize(
    "fault", ["modify_keeps_old_params", "duplicate_entry_wrong_error"]
)
def test_deep_pipeline_detects_real_bugs(tor_program, tor_p4info, fault):
    """Pipelining must not mask genuine switch misbehaviour: an injected
    control-plane bug is still caught at depth 4."""
    from repro.switch import FaultRegistry

    stack = PinsSwitchStack(tor_program, faults=FaultRegistry([fault]))
    fuzzer = P4Fuzzer(
        tor_p4info,
        stack,
        FuzzerConfig(num_writes=40, updates_per_write=25, seed=7, pipeline_depth=4),
    )
    result = fuzzer.run()
    assert result.incidents.count > 0, fault


# ----------------------------------------------------------------------
# Determinism with batches concurrently in flight
# ----------------------------------------------------------------------
@pytest.mark.parametrize("depth", [2, 4])
def test_in_flight_rolls_stay_deterministic(tor_program, tor_p4info, depth):
    """Two identical runs with `depth` batches in flight consume the fault
    channel's seeded rolls identically: the turnstile fixes the transport
    interleaving to submission order."""
    first, chan_a = _run(tor_program, tor_p4info, "chaos", pipeline_depth=depth)
    second, chan_b = _run(tor_program, tor_p4info, "chaos", pipeline_depth=depth)

    assert dataclasses.asdict(chan_a.stats) == dataclasses.asdict(chan_b.stats)
    assert _fingerprint(first) == _fingerprint(second)
    assert first.transport_wait_seconds == pytest.approx(second.transport_wait_seconds)
    assert first.pipeline.max_in_flight == second.pipeline.max_in_flight


# ----------------------------------------------------------------------
# Window planning respects the reference graph
# ----------------------------------------------------------------------
def _first_table_updates(tor_p4info, n):
    """n inserts into the same table with distinct keys, plus one
    duplicate-key update that must conflict with the first."""
    from repro.fuzzer import RequestGenerator
    import random

    gen = RequestGenerator(tor_p4info, random.Random(7))
    updates = []
    while len(updates) < n:
        update = gen.generate_update()
        if update is not None and update.type is UpdateType.INSERT:
            updates.append(update)
    return updates


def test_conflicting_batches_never_share_a_window(tor_p4info):
    updates = _first_table_updates(tor_p4info, 4)
    scheduler = WriteScheduler(switch=None, p4info=tor_p4info, depth=8)
    try:
        independent = [[u] for u in updates]
        # A duplicate of the first entry conflicts with batch 0.
        dup = [Update(UpdateType.DELETE, updates[0].entry)]
        windows = scheduler.plan_windows(independent + [dup])
        assert [len(w) for w in windows] == [len(independent), 1]
        assert scheduler.stats.conflict_stalls == 1
        assert scheduler.conflicts(independent, dup)
        assert not scheduler.conflicts(independent[:1], [updates[1]])
    finally:
        scheduler.close()


def test_make_batches_feed_windows_soundly(tor_p4info, tor_program):
    """End to end: batches from make_batches either fit one window or are
    split exactly at conflict boundaries."""
    updates = _first_table_updates(tor_p4info, 6)
    batches = make_batches(tor_p4info, updates, 2)
    scheduler = WriteScheduler(switch=None, p4info=tor_p4info, depth=4)
    try:
        for window in scheduler.plan_windows(batches):
            for i, batch in enumerate(window):
                assert not scheduler.conflicts(window[:i], batch)
    finally:
        scheduler.close()


# ----------------------------------------------------------------------
# Reporting: the throughput metrics and their rendering
# ----------------------------------------------------------------------
def test_collect_pipeline_throughput_folds_the_result(tor_program, tor_p4info):
    from repro.switchv.metrics import collect_pipeline_throughput

    result, _ = _run(tor_program, tor_p4info, "delay", pipeline_depth=4)
    metrics = collect_pipeline_throughput(result)
    assert metrics.depth == 4
    assert metrics.updates_sent == result.updates_sent
    assert metrics.transport_wait_seconds == result.transport_wait_seconds
    assert metrics.windows == result.pipeline.windows
    assert metrics.modeled_seconds == pytest.approx(
        result.elapsed_seconds + result.transport_wait_seconds
    )
    assert metrics.modeled_updates_per_second > 0

    sequential, _ = _run(tor_program, tor_p4info, None)
    base = collect_pipeline_throughput(sequential)
    assert base.depth == 1
    assert base.windows == 0


def test_render_pipeline_stats_both_schedules(tor_program, tor_p4info):
    from repro.switchv.report import render_pipeline_stats

    sequential, _ = _run(tor_program, tor_p4info, None)
    text = render_pipeline_stats(sequential)
    assert "sequential (one batch in flight)" in text
    assert "updates/s modeled" in text

    deep, _ = _run(tor_program, tor_p4info, None, pipeline_depth=4)
    text = render_pipeline_stats(deep)
    assert "depth 4" in text
    assert "coalesced away" in text
    assert "transport wait saved" in text
