"""Coverage-goal identity stability + the greybox feedback loop.

The identity bar: entry-coverage goal names are pure functions of the
installed state — no process-randomized ``hash()`` — so names agree
across processes regardless of PYTHONHASHSEED and the per-goal packet
cache hits across restarts.  The feedback bar: state-aware mutations
exercise the spec paths they name (ALREADY_EXISTS), a guided campaign is
bit-for-bit deterministic per seed, and depth-1 pipelining stays
byte-identical with coverage accounting on.
"""

import dataclasses
import hashlib
import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzzer import CoverageTracker, FuzzerConfig, P4Fuzzer
from repro.fuzzer.feedback import CoverageProgress
from repro.fuzzer.generator import GeneratorState
from repro.fuzzer.mutations import apply_mutation
from repro.p4rt.messages import Update, UpdateType
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switchv.metrics import merge_coverage_progress
from repro.switchv.report import render_coverage_progress
from repro.symbolic.coverage import entry_goal_name
from repro.workloads import EntryBuilder

REPO = Path(__file__).resolve().parent.parent

# What a child process runs to name goals and exercise the per-goal disk
# cache.  Two invocations differ only in PYTHONHASHSEED; the bug this
# guards against made both the names and the cache keys process-local.
_CHILD_SCRIPT = """
import json, sys
from repro.bmv2.entries import decode_table_entry
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_toy_program
from repro.symbolic import PacketGenerator
from repro.symbolic.cache import PacketCache
from repro.symbolic.coverage import CoverageMode, goals_for_mode
from repro.workloads import EntryBuilder

program = build_toy_program()
p4info = build_p4info(program)
b = EntryBuilder(p4info)
entries = [
    b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
    b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
    b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8,
          "set_nexthop_id", {"nexthop_id": 3}),
]
state = {}
for entry in entries:
    decoded = decode_table_entry(p4info, entry)
    state.setdefault(decoded.table_name, []).append(decoded)
generator = PacketGenerator(program, state)
goals = [g.name for g in goals_for_mode(generator.executions(), CoverageMode.ENTRY, ())]
result = generator.generate(CoverageMode.ENTRY, goal_cache=PacketCache(sys.argv[1]))
print(json.dumps({
    "goals": goals,
    "from_cache": result.stats.goals_from_cache,
    "total": result.stats.goals_total,
}))
"""


def _run_child(hash_seed: str, cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(cache_dir)],
        capture_output=True, text=True, env=env, check=True, timeout=300,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


class TestGoalIdentity:
    def test_entry_goal_name_is_structural(self):
        identity = ("ipv4_tbl", (("ipv4_dst", "lpm", 0x0A000000, 0, 8, True),), 0)
        name = entry_goal_name("ipv4_tbl", identity)
        digest = hashlib.sha256(repr(identity).encode()).hexdigest()[:8]
        assert name == f"entry:ipv4_tbl:{digest}"
        # Stable within the process too, trivially.
        assert name == entry_goal_name("ipv4_tbl", identity)

    def test_goal_names_and_disk_cache_survive_hash_randomization(self, tmp_path):
        first = _run_child("1", tmp_path)
        second = _run_child("2", tmp_path)
        # Same installed state -> same goal names, whatever hash() does.
        assert first["goals"] == second["goals"]
        assert first["total"] > 0
        # The first process populated the per-goal disk cache cold...
        assert first["from_cache"] == 0
        # ...and a *different* process, under a different hash seed,
        # answers every goal from it.
        assert second["from_cache"] == second["total"]


class TestStatefulMutations:
    def _insert(self, tor_p4info):
        b = EntryBuilder(tor_p4info)
        return Update(UpdateType.INSERT, b.exact("vrf_tbl", {"vrf_id": 9}, "NoAction"))

    def test_duplicate_insert_needs_installed_state(self, tor_p4info):
        rng = random.Random(3)
        update = self._insert(tor_p4info)
        assert apply_mutation("duplicate_insert", rng, tor_p4info, update) is None
        assert (
            apply_mutation("duplicate_insert", rng, tor_p4info, update, state=GeneratorState())
            is None
        )

    def test_duplicate_insert_reinserts_installed_entry(self, tor_p4info):
        rng = random.Random(3)
        b = EntryBuilder(tor_p4info)
        installed = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        state = GeneratorState()
        state.install(installed)
        mutated = apply_mutation(
            "duplicate_insert", rng, tor_p4info, self._insert(tor_p4info), state=state
        )
        assert mutated is not None
        assert mutated.update.type is UpdateType.INSERT
        # The duplicate targets what is actually installed, not the fresh
        # update's (never-installed) key.
        assert mutated.update.entry.match_key() == installed.match_key()

    def test_delete_nonexistent_avoids_installed_keys(self, tor_p4info):
        rng = random.Random(3)
        update = self._insert(tor_p4info)
        # The key is genuinely uninstalled: deleting it must fail upstream.
        mutated = apply_mutation("delete_nonexistent", rng, tor_p4info, update)
        assert mutated is not None
        assert mutated.update.type is UpdateType.DELETE
        assert mutated.update.entry.match_key() == update.entry.match_key()
        # Once that key is installed, the mutation no longer applies.
        state = GeneratorState()
        state.install(update.entry)
        assert (
            apply_mutation("delete_nonexistent", rng, tor_p4info, update, state=state)
            is None
        )


class TestMutationEffectiveness:
    CONFIG = FuzzerConfig(
        num_writes=8,
        updates_per_write=12,
        seed=5,
        mutations=["duplicate_insert"],
        mutation_probability=1.0,
    )

    def test_duplicate_insert_exercises_already_exists(self, tor_program, tor_p4info):
        """A healthy switch returns ALREADY_EXISTS for every duplicate and
        the oracle, expecting exactly that, files zero model incidents."""
        result = P4Fuzzer(tor_p4info, PinsSwitchStack(tor_program), self.CONFIG).run()
        assert result.mutation_counts.get("duplicate_insert", 0) > 0
        assert result.incidents.model_count == 0

    def test_duplicate_insert_detects_wrong_error_fault(self, tor_program, tor_p4info):
        """The same campaign against the duplicate_entry_wrong_error
        catalogue fault observes the wrong status and files incidents —
        the mutation provably drives the spec path it names."""
        stack = PinsSwitchStack(
            tor_program, faults=FaultRegistry(["duplicate_entry_wrong_error"])
        )
        result = P4Fuzzer(tor_p4info, stack, self.CONFIG).run()
        assert result.mutation_counts.get("duplicate_insert", 0) > 0
        assert result.incidents.model_count > 0


GUIDED = FuzzerConfig(
    num_writes=8, updates_per_write=12, seed=17, coverage_guided=True
)


def _fingerprint(result):
    return {
        "incident_keys": [i.dedup_key() for i in result.incidents],
        "final_state": sorted(e.match_key() for e in result.final_entries),
        "updates_sent": result.updates_sent,
        "mutations": result.mutation_counts,
        "covered": result.coverage.covered_keys,
        "samples": result.coverage.samples,
    }


def _run_guided(tor_program, tor_p4info, **overrides):
    config = dataclasses.replace(GUIDED, **overrides)
    fuzzer = P4Fuzzer(
        tor_p4info, PinsSwitchStack(tor_program), config, model=tor_program
    )
    return fuzzer.run()


class TestGuidedCampaign:
    def test_guided_run_is_deterministic_per_seed(self, tor_program, tor_p4info):
        first = _run_guided(tor_program, tor_p4info)
        second = _run_guided(tor_program, tor_p4info)
        assert _fingerprint(first) == _fingerprint(second)

    def test_depth1_pipeline_byte_identical_with_coverage(self, tor_program, tor_p4info):
        sequential = _run_guided(tor_program, tor_p4info)
        pipelined = _run_guided(tor_program, tor_p4info, force_pipeline=True)
        assert _fingerprint(pipelined) == _fingerprint(sequential)

    def test_tracking_alone_leaves_the_campaign_unchanged(self, tor_program, tor_p4info):
        """track_coverage observes; only coverage_guided steers.  The
        metered-but-blind arm must reproduce the plain blind campaign."""
        plain = _run_guided(
            tor_program, tor_p4info, coverage_guided=False, track_coverage=False
        )
        metered = _run_guided(
            tor_program, tor_p4info, coverage_guided=False, track_coverage=True
        )
        assert plain.coverage is None
        assert metered.coverage is not None
        base = {
            k: v
            for k, v in _fingerprint(metered).items()
            if k not in ("covered", "samples")
        }
        assert base == {
            "incident_keys": [i.dedup_key() for i in plain.incidents],
            "final_state": sorted(e.match_key() for e in plain.final_entries),
            "updates_sent": plain.updates_sent,
            "mutations": plain.mutation_counts,
        }

    def test_model_required_for_guidance(self, tor_program, tor_p4info):
        with pytest.raises(ValueError):
            P4Fuzzer(tor_p4info, PinsSwitchStack(tor_program), GUIDED)


class TestCoverageTracker:
    def _tracker(self, toy_program, toy_p4info):
        return CoverageTracker(toy_program, toy_p4info, valid_ports=(1, 2))

    def _entries(self, toy_p4info):
        b = EntryBuilder(toy_p4info)
        return [
            b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
            b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
        ]

    def test_observe_dedupes_keys_and_attributes_gains(self, toy_program, toy_p4info):
        tracker = self._tracker(toy_program, toy_p4info)
        entries = self._entries(toy_p4info)
        batch = [Update(UpdateType.INSERT, e) for e in entries]
        new = tracker.observe_batch(batch, entries, write_index=0)
        assert new == sorted(set(new), key=new.index)  # no duplicates
        progress = tracker.progress()
        assert progress.covered == len(new) > 0
        # Per-profile executions repeat trace keys; attribution must not
        # double-count them.
        assert sum(progress.table_gains.values()) <= progress.covered
        assert "table:vrf_tbl" in progress.covered_keys

    def test_unchanged_state_skips_scoring(self, toy_program, toy_p4info):
        tracker = self._tracker(toy_program, toy_p4info)
        entries = self._entries(toy_p4info)
        batch = [Update(UpdateType.INSERT, e) for e in entries]
        tracker.observe_batch(batch, entries, write_index=0)
        # Same oracle state again (e.g. a fully rejected batch).
        assert tracker.observe_batch(batch, entries, write_index=1) == []
        progress = tracker.progress()
        assert progress.batches_scored == 1
        assert progress.batches_skipped == 1

    def test_corpus_seed_emits_one_bit_neighbours(self, toy_program, toy_p4info):
        tracker = self._tracker(toy_program, toy_p4info)
        entries = self._entries(toy_p4info)
        batch = [Update(UpdateType.INSERT, e) for e in entries]
        tracker.observe_batch(batch, entries, write_index=0)
        assert tracker.corpus, "a coverage-increasing batch joins the corpus"
        rng = random.Random(2)
        seeds = [tracker.corpus_seed(rng) for _ in range(200)]
        emitted = [s for s in seeds if s is not None]
        assert emitted, "replay fires at CORPUS_SEED_PROBABILITY"
        originals = {e.match_key() for e in entries}
        neighbours = [u for u in emitted if u.entry.match_key() not in originals]
        assert neighbours, "inserts replay as bit-flipped neighbours"
        for update in neighbours:
            flipped = [
                (m, o)
                for m, o in zip(
                    update.entry.matches,
                    next(
                        e for e in entries if e.table_id == update.entry.table_id
                    ).matches,
                )
                if m.value != o.value
            ]
            assert len(flipped) == 1
            delta = int.from_bytes(flipped[0][0].value, "big") ^ int.from_bytes(
                flipped[0][1].value, "big"
            )
            assert delta.bit_count() == 1

    def test_table_weights_favor_uncovered_tables(self, toy_program, toy_p4info):
        tracker = self._tracker(toy_program, toy_p4info)
        entries = self._entries(toy_p4info)
        tracker.observe_batch(
            [Update(UpdateType.INSERT, e) for e in entries], entries, write_index=0
        )
        tables = list(toy_p4info.tables.values())
        weights = dict(zip([t.name for t in tables], tracker.table_weights(tables)))
        # ipv4_tbl has no coverage yet: the exploration bonus puts it above
        # the already-covered tables.
        assert weights["ipv4_tbl"] > weights["vrf_tbl"]


class TestProgressSurfaces:
    def _progress(self):
        return CoverageProgress(
            samples=[(10, 3), (20, 5)],
            covered_keys=["branch:g:t", "entry:vrf_tbl:deadbeef", "table:vrf_tbl"],
            corpus_size=2,
            batches_scored=2,
            batches_skipped=1,
            score_seconds=0.5,
            table_gains={"vrf_tbl": 2},
        )

    def test_render_coverage_progress(self):
        text = render_coverage_progress(self._progress())
        assert "coverage feedback:" in text
        assert "3 covered" in text
        assert "1 branch, 1 entry, 1 table" in text
        assert "hot tables:   vrf_tbl (+2)" in text

    def test_merge_coverage_progress(self):
        other = CoverageProgress(
            samples=[(15, 4)],
            covered_keys=["table:vrf_tbl", "miss:ipv4_tbl"],
            corpus_size=1,
            batches_scored=1,
            table_gains={"vrf_tbl": 1, "ipv4_tbl": 1},
        )
        merged = merge_coverage_progress([self._progress(), None, other])
        assert merged.covered == 4  # union, shared key counted once
        assert merged.samples == [(10, 3), (20, 5), (35, 4)]  # offset by shard
        assert merged.batches_scored == 3
        assert merged.table_gains == {"vrf_tbl": 3, "ipv4_tbl": 1}
        assert merge_coverage_progress([None, None]) is None
