"""Acceptance tests for the transport layer: fuzzing over a faulty channel
must produce *zero phantom incidents* — the model-incident set and the
final switch state must match a fault-free run of the same seed."""

import pytest

from repro.fuzzer import FuzzerConfig, P4Fuzzer
from repro.p4rt.channel import FaultInjectingChannel, RetriesExhausted, resolve_profile
from repro.p4rt.retry import build_resilient_client
from repro.switch import PinsSwitchStack
from repro.switchv.campaign import CampaignConfig, run_soak_campaign
from repro.switchv.report import TRANSPORT_KINDS, render_transport_stats

CONFIG = FuzzerConfig(num_writes=15, updates_per_write=20, seed=21)


def _campaign(tor_program, tor_p4info, profile_name):
    stack = PinsSwitchStack(tor_program)
    channel = None
    switch = stack
    if profile_name is not None:
        channel = FaultInjectingChannel(stack, resolve_profile(profile_name, seed=13))
        switch = channel
    client = build_resilient_client(switch)
    fuzzer = P4Fuzzer(tor_p4info, client, CONFIG)
    return fuzzer.run(), channel


@pytest.fixture(scope="module")
def baseline():
    from repro.p4.p4info import build_p4info
    from repro.p4.programs import build_tor_program

    program = build_tor_program()
    return _campaign(program, build_p4info(program), None)[0]


@pytest.mark.parametrize(
    "profile",
    ["drop_request", "drop_response", "duplicate", "delay", "reset", "crash", "chaos"],
)
def test_no_phantom_incidents_under_transport_faults(
    tor_program, tor_p4info, baseline, profile
):
    result, channel = _campaign(tor_program, tor_p4info, profile)

    # The channel actually misbehaved (the test exercises something).
    assert channel.stats.faults_injected > 0, profile

    # Zero phantoms: every model incident matches the fault-free run
    # (an all-healthy stack: both sets should in fact be empty).
    base_keys = {i.dedup_key() for i in baseline.incidents.model_only()}
    soak_keys = {i.dedup_key() for i in result.incidents.model_only()}
    assert soak_keys == base_keys, result.incidents.summary_lines()

    # Same final switch state as the fault-free run.
    assert {e.match_key() for e in result.final_entries} == {
        e.match_key() for e in baseline.final_entries
    }

    # The transport ledger is reported separately from model incidents.
    # (Duplicates never raise, so they alone cause no retries.)
    assert result.transport.retries > 0 or channel.stats.duplicated > 0, profile
    for incident in result.incidents.flakes_only():
        assert incident.kind in TRANSPORT_KINDS


def test_transport_counters_surface_in_reports(tor_program, tor_p4info):
    result, _ = _campaign(tor_program, tor_p4info, "chaos")
    text = render_transport_stats(result.transport)
    assert "retries:" in text
    assert "resync" in text
    assert str(result.transport.retries) in text


def test_clean_channel_reports_no_transport_activity(tor_program, tor_p4info, baseline):
    assert baseline.transport.retries == 0
    assert baseline.transport.flakes == 0
    assert baseline.transport.ambiguous_batches == 0
    assert not baseline.transport.any_activity


def test_reset_recovery_reconnects_the_session(tor_program, tor_p4info):
    result, channel = _campaign(tor_program, tor_p4info, "reset")
    assert channel.stats.resets > 0
    assert result.transport.reconnects > 0
    # Every reset was recovered: the campaign ran to completion (writes_sent
    # counts batches, so it is at least one per generation wave).
    assert result.writes_sent >= CONFIG.num_writes


def test_ambiguous_batches_trigger_oracle_resync(tor_program, tor_p4info):
    result, _ = _campaign(tor_program, tor_p4info, "drop_response")
    assert result.transport.ambiguous_batches > 0
    assert result.transport.resyncs == result.transport.ambiguous_batches


class _Wrapper:
    """Delegating base for scripted flaky services (harness data-plane
    calls pass through via __getattr__)."""

    def __init__(self, inner):
        self.inner = inner

    def write(self, request):
        return self.inner.write(request)

    def read(self, request):
        return self.inner.read(request)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class ReadFlakyService(_Wrapper):
    """Every Nth read-back is abandoned by the transport; writes are
    untouched, so the switch's final state is deterministic."""

    def __init__(self, inner, every=3):
        super().__init__(inner)
        self.every = every
        self.reads = 0

    def read(self, request):
        self.reads += 1
        if self.reads % self.every == 0:
            raise RetriesExhausted("read-back abandoned (scripted)")
        return self.inner.read(request)


class AmbiguousAbandonService(_Wrapper):
    """One write is applied but reported abandoned (the ambiguous
    RetriesExhausted outcome), and the recovery read-back that follows it
    fails too — the exact sequence that used to leave the oracle's
    expected state stale forever."""

    def __init__(self, inner, abandon_write=2):
        super().__init__(inner)
        self.abandon_write = abandon_write
        self.writes = 0
        self.fail_next_read = False

    def write(self, request):
        self.writes += 1
        if self.writes == self.abandon_write:
            self.inner.write(request)  # applied, but the caller never learns
            self.fail_next_read = True
            raise RetriesExhausted("write abandoned after apply (scripted)")
        return self.inner.write(request)

    def read(self, request):
        if self.fail_next_read:
            self.fail_next_read = False
            raise RetriesExhausted("recovery read-back abandoned (scripted)")
        return self.inner.read(request)


def test_failed_read_back_still_judges_statuses(tor_program, tor_p4info, baseline):
    """Regression: when the post-write read-back fails, the batch must
    still be judged status-only so the oracle projects it forward —
    otherwise its expected state drifts and the *next* read-back reports
    phantom incidents."""
    stack = PinsSwitchStack(tor_program)
    flaky = ReadFlakyService(stack, every=3)
    fuzzer = P4Fuzzer(tor_p4info, flaky, CONFIG)
    result = fuzzer.run()

    # The scripted flake actually fired, and was ledgered as a flake.
    assert result.transport.flakes > 0
    # Zero phantoms: model incidents match the fault-free run of the same
    # seed (both empty against a healthy stack), and the switch's final
    # state matches too — a clean soak cycle.
    base_keys = {i.dedup_key() for i in baseline.incidents.model_only()}
    assert {
        i.dedup_key() for i in result.incidents.model_only()
    } == base_keys, result.incidents.summary_lines()
    assert {e.match_key() for e in result.final_entries} == {
        e.match_key() for e in baseline.final_entries
    }


def test_stale_oracle_resyncs_before_judging_again(tor_program, tor_p4info):
    """Regression: an abandoned-but-applied write whose recovery read-back
    also fails leaves the oracle's view stale; the fuzzer must adopt a
    fresh read-back before judging anything else, not report the
    abandoned batch's entries as phantom READBACK_MISMATCHes."""
    stack = PinsSwitchStack(tor_program)
    flaky = AmbiguousAbandonService(stack, abandon_write=2)
    fuzzer = P4Fuzzer(tor_p4info, flaky, CONFIG)
    result = fuzzer.run()

    # Both scripted failures fired (write abandon + failed recovery read).
    assert result.transport.flakes >= 2
    # The repair resynced instead of judging against the stale projection.
    assert result.transport.resyncs >= 1
    assert not result.incidents.model_only(), result.incidents.summary_lines()


def test_soak_campaign_smoke():
    outcome = run_soak_campaign(
        "pins",
        CampaignConfig(fuzz_writes=8, fuzz_updates_per_write=15, seed=5, soak_cycles=2),
        fault_profile="chaos",
    )
    assert outcome.cycles == 2
    assert outcome.ok, (outcome.phantom_cycles, outcome.state_divergences)
    assert outcome.faults_injected > 0
    assert outcome.retries > 0
