"""Acceptance tests for the transport layer: fuzzing over a faulty channel
must produce *zero phantom incidents* — the model-incident set and the
final switch state must match a fault-free run of the same seed."""

import pytest

from repro.fuzzer import FuzzerConfig, P4Fuzzer
from repro.p4rt.channel import FaultInjectingChannel, resolve_profile
from repro.p4rt.retry import build_resilient_client
from repro.switch import PinsSwitchStack
from repro.switchv.campaign import CampaignConfig, run_soak_campaign
from repro.switchv.report import TRANSPORT_KINDS, render_transport_stats

CONFIG = FuzzerConfig(num_writes=15, updates_per_write=20, seed=21)


def _campaign(tor_program, tor_p4info, profile_name):
    stack = PinsSwitchStack(tor_program)
    channel = None
    switch = stack
    if profile_name is not None:
        channel = FaultInjectingChannel(stack, resolve_profile(profile_name, seed=13))
        switch = channel
    client = build_resilient_client(switch)
    fuzzer = P4Fuzzer(tor_p4info, client, CONFIG)
    return fuzzer.run(), channel


@pytest.fixture(scope="module")
def baseline():
    from repro.p4.p4info import build_p4info
    from repro.p4.programs import build_tor_program

    program = build_tor_program()
    return _campaign(program, build_p4info(program), None)[0]


@pytest.mark.parametrize(
    "profile",
    ["drop_request", "drop_response", "duplicate", "delay", "reset", "crash", "chaos"],
)
def test_no_phantom_incidents_under_transport_faults(
    tor_program, tor_p4info, baseline, profile
):
    result, channel = _campaign(tor_program, tor_p4info, profile)

    # The channel actually misbehaved (the test exercises something).
    assert channel.stats.faults_injected > 0, profile

    # Zero phantoms: every model incident matches the fault-free run
    # (an all-healthy stack: both sets should in fact be empty).
    base_keys = {i.dedup_key() for i in baseline.incidents.model_only()}
    soak_keys = {i.dedup_key() for i in result.incidents.model_only()}
    assert soak_keys == base_keys, result.incidents.summary_lines()

    # Same final switch state as the fault-free run.
    assert {e.match_key() for e in result.final_entries} == {
        e.match_key() for e in baseline.final_entries
    }

    # The transport ledger is reported separately from model incidents.
    # (Duplicates never raise, so they alone cause no retries.)
    assert result.transport.retries > 0 or channel.stats.duplicated > 0, profile
    for incident in result.incidents.flakes_only():
        assert incident.kind in TRANSPORT_KINDS


def test_transport_counters_surface_in_reports(tor_program, tor_p4info):
    result, _ = _campaign(tor_program, tor_p4info, "chaos")
    text = render_transport_stats(result.transport)
    assert "retries:" in text
    assert "resync" in text
    assert str(result.transport.retries) in text


def test_clean_channel_reports_no_transport_activity(tor_program, tor_p4info, baseline):
    assert baseline.transport.retries == 0
    assert baseline.transport.flakes == 0
    assert baseline.transport.ambiguous_batches == 0
    assert not baseline.transport.any_activity


def test_reset_recovery_reconnects_the_session(tor_program, tor_p4info):
    result, channel = _campaign(tor_program, tor_p4info, "reset")
    assert channel.stats.resets > 0
    assert result.transport.reconnects > 0
    # Every reset was recovered: the campaign ran to completion (writes_sent
    # counts batches, so it is at least one per generation wave).
    assert result.writes_sent >= CONFIG.num_writes


def test_ambiguous_batches_trigger_oracle_resync(tor_program, tor_p4info):
    result, _ = _campaign(tor_program, tor_p4info, "drop_response")
    assert result.transport.ambiguous_batches > 0
    assert result.transport.resyncs == result.transport.ambiguous_batches


def test_soak_campaign_smoke():
    outcome = run_soak_campaign(
        "pins",
        CampaignConfig(fuzz_writes=8, fuzz_updates_per_write=15, seed=5, soak_cycles=2),
        fault_profile="chaos",
    )
    assert outcome.cycles == 2
    assert outcome.ok, (outcome.phantom_cycles, outcome.state_divergences)
    assert outcome.faults_injected > 0
    assert outcome.retries > 0
