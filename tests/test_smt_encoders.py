"""Differential guard: structural encoder + modern kernel vs the baselines.

The optimized pipeline (``Solver(encoder="structural", kernel="modern")``)
must be observationally identical to the retained Tseitin encoder and
legacy CDCL kernel: same SAT/UNSAT verdicts on every formula, models that
satisfy the original term, the same verdict sequences under assumptions
and pooled reuse, and the same canonical minimal models.  The random term
machinery is shared with :mod:`tests.test_smt_compile`, so every operator
and a spread of widths is covered by construction.
"""

import random

import pytest

from repro.smt import Result, Solver
from repro.smt import terms as T
from repro.smt.minmodel import minimal_assignment
from repro.smt.pool import SolverPool

from tests.test_smt_compile import _random_bool, _random_bv

COMBOS = [
    ("structural", "modern"),
    ("structural", "legacy"),
    ("tseitin", "modern"),
    ("tseitin", "legacy"),
]


def _check_all(formula, simplify_terms=True):
    """Solve ``formula`` under every combo; returns the shared verdict.

    Asserts the verdicts agree and that every SAT model satisfies the
    original term under the independent concrete evaluator.
    """
    verdicts = {}
    for encoder, kernel in COMBOS:
        s = Solver(simplify_terms=simplify_terms, encoder=encoder, kernel=kernel)
        s.add(formula)
        result = s.check()
        verdicts[(encoder, kernel)] = result
        if result is Result.SAT:
            model = dict(s.model())
            assert T.evaluate(formula, model) == 1, (
                f"{encoder}/{kernel} model {model} falsifies {formula!r}"
            )
    assert len(set(verdicts.values())) == 1, f"verdict split: {verdicts}"
    return next(iter(verdicts.values()))


@pytest.mark.parametrize("seed", range(12))
def test_random_formulas_agree_across_encoders_and_kernels(seed):
    rng = random.Random(7000 + seed)
    saw_sat = saw_unsat = False
    for _ in range(12):
        formula = _random_bool(rng, depth=4)
        verdict = _check_all(formula, simplify_terms=bool(rng.getrandbits(1)))
        saw_sat |= verdict is Result.SAT
        saw_unsat |= verdict is Result.UNSAT
    # The generator reliably produces both outcomes over 12 formulas; a
    # seed where it does not would silently weaken the test.
    assert saw_sat


@pytest.mark.parametrize("seed", range(6))
def test_assumption_sequences_agree(seed):
    # The SolverPool usage pattern: one base encoding, many goal
    # assumptions checked against it in sequence.  The verdict *sequence*
    # (not just the final answer) must be identical — this exercises
    # literal_for's bidirectional root gates on the structural path.
    rng = random.Random(8000 + seed)
    width = rng.choice([4, 8, 16])
    base = _random_bool(rng, depth=3)
    assumptions = [_random_bool(rng, depth=2) for _ in range(6)]
    sequences = {}
    for encoder, kernel in COMBOS:
        s = Solver(encoder=encoder, kernel=kernel)
        s.add(base)
        seq = []
        for a in assumptions:
            result = s.check(a)
            seq.append(result)
            if result is Result.SAT:
                model = dict(s.model())
                assert T.evaluate(T.and_(base, a), model) == 1
        # A joint check and a bare re-check keep the encoding reusable.
        seq.append(s.check(*assumptions))
        seq.append(s.check())
        sequences[(encoder, kernel)] = tuple(seq)
    assert len(set(sequences.values())) == 1, f"sequence split: {sequences}"
    # Structured goals over one bitvector, shaped like entry coverage.
    x = T.bv_var(f"cov{width}", width)
    goals = [x.eq(T.bv_const(v % (1 << width), width)) for v in (0, 3, 7, 250)]
    for encoder, kernel in COMBOS:
        s = Solver(encoder=encoder, kernel=kernel)
        s.add(x.ult(T.bv_const(8, width)))
        assert [s.check(g) for g in goals] == [
            Result.SAT, Result.SAT, Result.SAT, Result.UNSAT,
        ]


def test_pooled_reuse_agrees_across_configurations():
    # Two "table states" against one pooled solver per config: the second
    # state's constraints extend the first's warm encoding.
    x = T.bv_var("px", 8)
    y = T.bv_var("py", 8)
    state1 = [x.ult(T.bv_const(100, 8))]
    state2 = [y.eq(x + T.bv_const(1, 8))]
    goals = [
        x.eq(T.bv_const(3, 8)),
        T.and_(x.eq(T.bv_const(4, 8)), y.eq(T.bv_const(5, 8))),
        T.and_(x.eq(T.bv_const(4, 8)), y.eq(T.bv_const(9, 8))),
        x.eq(T.bv_const(200, 8)),
    ]
    sequences = {}
    for encoder, kernel in COMBOS:
        pool = SolverPool(encoder=encoder, kernel=kernel)
        s = pool.solver(("prog", "profile"), state1)
        seq = [s.check(goals[0])]
        s = pool.solver(("prog", "profile"), state1 + state2)
        seq.extend(s.check(g) for g in goals[1:])
        sequences[(encoder, kernel)] = tuple(seq)
        assert pool.hits == 1 and pool.misses == 1
    assert len(set(sequences.values())) == 1, f"pooled split: {sequences}"


@pytest.mark.parametrize("seed", range(4))
def test_canonical_minimal_models_identical(seed):
    # minimal_assignment is the canonical-witness core; its output must be
    # a pure function of the formula, bit-identical across every
    # encoder/kernel configuration.
    rng = random.Random(9000 + seed)
    width = rng.choice([4, 8])
    a = T.bv_var("ma", width)
    b = T.bv_var("mb", width)
    formula = T.and_(
        _random_bv(rng, 2, width).eq(b),
        a.ult(T.bv_const((1 << width) - 2, width)),
        (a ^ b).ne(T.bv_const(0, width)),
    )
    variables = {
        name: T.bv_var(name, sort.width)
        for name, sort in T.free_variables(formula).items()
    }
    results = {}
    for encoder, kernel in COMBOS:
        s = Solver(encoder=encoder, kernel=kernel)
        results[(encoder, kernel)] = minimal_assignment(s, [formula], variables)
    values = list(results.values())
    assert all(v == values[0] for v in values), f"witness split: {results}"
    if values[0] is not None:
        assert T.evaluate(formula, values[0]) == 1


class TestClauseEconomy:
    """The structural encoder's whole point: fewer clauses, shared gates."""

    def test_constant_folding_collapses_eq_with_const(self):
        x = T.bv_var("fx", 32)
        f = x.eq(T.bv_const(0xDEADBEEF, 32))
        counts = {}
        for encoder in ("structural", "tseitin"):
            s = Solver(simplify_terms=False, encoder=encoder)
            s.add(f)
            assert s.check() is Result.SAT
            assert s.model()["fx"] == 0xDEADBEEF
            counts[encoder] = s.stats["cnf_clauses"]
        # Per-bit iff-with-constant folds to a (possibly negated) bit
        # literal; the 32-way AND emits one direction only.
        assert counts["structural"] < counts["tseitin"] / 2

    def test_structural_hashing_shares_repeated_gates(self):
        # `x & y` and `y & x` are *different terms* (hash-consing cannot
        # merge them), but the per-bit AND gates normalize their argument
        # literals into sorted order, so the literal-level cache answers
        # the second encoding without fresh variables or clauses.
        x = T.bv_var("sx", 16)
        y = T.bv_var("sy", 16)
        f = T.and_(
            (x & y).eq(T.bv_const(0x00F0, 16)),
            (y & x).ne(T.bv_const(0, 16)),
        )
        s = Solver(simplify_terms=False, encoder="structural")
        s.add(f)
        assert s.check() is Result.SAT
        assert T.evaluate(f, dict(s.model())) == 1
        assert s.stats["gates_shared"] >= 16

    def test_polarity_aware_encoding_beats_tseitin_on_goal_conjunctions(self):
        ip = T.bv_var("ip", 32)
        port = T.bv_var("port", 9)
        goals = [
            T.and_(
                ip.extract(31, 8).eq(T.bv_const(0x0A0B00 + i, 24)),
                port.ult(T.bv_const(16, 9)),
            )
            for i in range(20)
        ]
        counts = {}
        for encoder in ("structural", "tseitin"):
            s = Solver(simplify_terms=False, encoder=encoder)
            s.add(port.ne(T.bv_const(0, 9)))
            for g in goals:
                assert s.check(g) is Result.SAT
            counts[encoder] = s.stats["cnf_clauses"]
        assert counts["structural"] < 0.7 * counts["tseitin"]

    def test_stats_surface_cnf_counters(self):
        s = Solver()
        x = T.bv_var("cx", 8)
        s.add(x.eq(T.bv_const(5, 8)))
        assert s.check() is Result.SAT
        stats = s.stats
        for key in ("cnf_clauses", "gates_shared", "db_reductions",
                    "minimized_literals"):
            assert key in stats
        assert stats["cnf_clauses"] > 0

    def test_invalid_flags_rejected(self):
        with pytest.raises(ValueError):
            Solver(encoder="nope")
        with pytest.raises(ValueError):
            Solver(kernel="nope")
