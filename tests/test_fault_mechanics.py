"""Direct tests of the fault catalogue's layer-level mechanics."""

import pytest

from repro.bmv2.packet import deparse_packet, make_ipv4_packet
from repro.fuzzer.batching import make_batches, order_inserts
from repro.p4rt import codec
from repro.p4rt.messages import PacketOut, ReadRequest, Update, UpdateType, WriteRequest
from repro.p4rt.service import P4RuntimeClient
from repro.p4rt.status import Code
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switch.faults import FAULT_CATALOG, FAULTS_BY_NAME, faults_for_stack
from repro.workloads import EntryBuilder, baseline_entries, production_like_entries


def build_programmed(program, p4info, faults=(), entries=None):
    stack = PinsSwitchStack(program, faults=FaultRegistry(faults))
    client = P4RuntimeClient(stack)
    assert client.set_pipeline(p4info).ok or "p4info_push_failure_swallowed" in faults
    chosen = entries if entries is not None else baseline_entries(p4info)
    updates = order_inserts(p4info, [Update(UpdateType.INSERT, e) for e in chosen])
    for batch in make_batches(p4info, updates):
        stack.write(WriteRequest(updates=tuple(batch)))
    return stack, client


class TestCatalogIntegrity:
    def test_names_unique(self):
        names = [f.name for f in FAULT_CATALOG]
        assert len(names) == len(set(names))

    def test_every_fault_has_component_and_tool(self):
        for fault in FAULT_CATALOG:
            assert fault.component
            assert fault.discovered_by in ("p4-fuzzer", "p4-symbolic")
            assert fault.stack in ("pins", "cerberus")

    def test_stack_partition(self):
        pins = {f.name for f in faults_for_stack("pins")}
        cerberus = {f.name for f in faults_for_stack("cerberus")}
        assert not pins & cerberus
        assert pins | cerberus == set(FAULTS_BY_NAME)

    def test_trivial_test_names_valid(self):
        from repro.switchv.trivial import TRIVIAL_TESTS

        for fault in FAULT_CATALOG:
            if fault.trivial_test is not None:
                assert fault.trivial_test in TRIVIAL_TESTS, fault.name

    def test_unresolved_bug_present(self):
        # The paper reports unresolved bugs; at least one rides the catalogue.
        assert any(f.days_to_resolution is None for f in FAULT_CATALOG)


class TestControlPlaneMechanics:
    def test_delete_nonexistent_fails_batch(self, tor_program, tor_p4info):
        stack, client = build_programmed(
            tor_program, tor_p4info, faults=["delete_nonexistent_fails_batch"]
        )
        b = EntryBuilder(tor_p4info)
        ghost = b.exact("vrf_tbl", {"vrf_id": 55}, "NoAction")
        fresh = b.exact("vrf_tbl", {"vrf_id": 44}, "NoAction")
        response = stack.write(
            WriteRequest(
                updates=(
                    Update(UpdateType.INSERT, fresh),
                    Update(UpdateType.DELETE, ghost),
                    Update(UpdateType.INSERT, b.exact("vrf_tbl", {"vrf_id": 45}, "NoAction")),
                )
            )
        )
        codes = [s.code for s in response.statuses]
        assert codes[1] is Code.NOT_FOUND
        assert codes[0] is Code.ABORTED  # poisoned retroactively
        assert codes[2] is Code.ABORTED

    def test_modify_keeps_old_params(self, tor_program, tor_p4info):
        stack, client = build_programmed(
            tor_program, tor_p4info, faults=["modify_keeps_old_params"]
        )
        b = EntryBuilder(tor_p4info)
        modified = b.lpm(
            "ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A010000, 16,
            "set_nexthop_id", {"nexthop_id": 3},
        )
        assert client.modify(modified).ok  # lies
        read = client.read_table(tor_p4info.table_by_name("ipv4_tbl").id)
        entry = next(e for e in read if e.match_key() == modified.match_key())
        assert entry.action != modified.action  # old params survived

    def test_zero_byte_id_mangled_corrupts_values(self, tor_program, tor_p4info):
        stack, client = build_programmed(
            tor_program, tor_p4info, faults=["zero_byte_id_mangled"], entries=[]
        )
        b = EntryBuilder(tor_p4info)
        # 0x0100 encodes as 01 00; the string layer drops the zero byte, so
        # the switch installs VRF 1 — and a subsequent wire-distinct insert
        # of VRF 1 collides even though the two requests differ.
        padded = b.exact("vrf_tbl", {"vrf_id": 0x0100}, "NoAction")
        plain = b.exact("vrf_tbl", {"vrf_id": 0x01}, "NoAction")
        assert client.insert(padded).ok
        status = client.insert(plain)
        assert status.code is Code.ALREADY_EXISTS  # ghost collision
        assert padded.match_key() != plain.match_key()  # wire-distinct

    def test_acl_leak_exhausts_early(self, tor_program, tor_p4info):
        stack, client = build_programmed(
            tor_program, tor_p4info, faults=["acl_invalid_cleanup_leak"]
        )
        b = EntryBuilder(tor_p4info)
        rejected = 0
        exhausted = 0
        for i in range(60):
            entry = b.ternary(
                "acl_ingress_tbl",
                {"is_ipv4": (1, 1), "dst_ip": (i << 8, 0xFFFFFF00)},
                "drop",
                priority=31 + i,  # priorities above 30 hit the fault
            )
            status = client.insert(entry)
            if status.code is Code.INTERNAL:
                rejected += 1
            elif status.code is Code.RESOURCE_EXHAUSTED:
                exhausted += 1
        assert rejected > 0  # the bogus hw priority range rejection

    def test_tunnel_delete_leaves_state(self, cerberus_program, cerberus_p4info):
        entries = production_like_entries(cerberus_p4info, total=60, seed=3)
        stack, client = build_programmed(
            cerberus_program,
            cerberus_p4info,
            faults=["tunnel_delete_leaves_state"],
            entries=entries,
        )
        b = EntryBuilder(cerberus_p4info)
        tunnel = b.exact(
            "tunnel_tbl", {"tunnel_id": 9}, "set_ip_in_ip_encap",
            {"encap_src_ip": 1, "encap_dst_ip": 2},
        )
        assert client.insert(tunnel).ok
        # Remove the route-independent tunnel and try to recreate: the
        # hardware still holds it.
        assert client.delete(tunnel).ok
        status = client.insert(tunnel)
        assert status.code is Code.ALREADY_EXISTS


class TestDataPlaneMechanics:
    def test_dscp_remark(self, tor_program, tor_p4info):
        stack, _client = build_programmed(
            tor_program, tor_p4info, faults=["dscp_remark_zero"]
        )
        obs = stack.send_packet(
            deparse_packet(make_ipv4_packet(0x0A010001, dscp=20)), 1
        )
        assert obs.egress_port is not None
        assert obs.packet.get("ipv4.dscp") == 0

    def test_mtu_truncation(self, tor_program, tor_p4info):
        stack, _client = build_programmed(
            tor_program, tor_p4info, faults=["gnmi_mtu_truncation"]
        )
        obs = stack.send_packet(
            deparse_packet(make_ipv4_packet(0x0A010001, payload=b"x" * 200)), 1
        )
        assert len(obs.packet.payload) == 64

    def test_gnmi_port_disabled(self, tor_program, tor_p4info):
        stack, _client = build_programmed(
            tor_program, tor_p4info, faults=["gnmi_port_disabled"]
        )
        # Routes land 10.3/16 on port 3, which the config left down.
        obs = stack.send_packet(deparse_packet(make_ipv4_packet(0x0A030001)), 1)
        assert obs.egress_port is None

    def test_port_speed_drop(self, cerberus_program, cerberus_p4info):
        entries = baseline_entries(cerberus_p4info, ports=(5, 6))
        stack, _client = build_programmed(
            cerberus_program, cerberus_p4info, faults=["port_speed_drop"], entries=entries
        )
        obs = stack.send_packet(deparse_packet(make_ipv4_packet(0x0A010001)), 6)
        assert obs.egress_port is None  # port 5 drops under the fault

    def test_packet_out_punt_back(self, tor_program, tor_p4info):
        stack, _client = build_programmed(
            tor_program, tor_p4info, faults=["packet_out_punted_back"]
        )
        stack.drain_packet_ins()
        payload = deparse_packet(make_ipv4_packet(0x0B000001))
        stack.packet_out(PacketOut(payload=payload, egress_port=4))
        bounced = stack.drain_packet_ins()
        assert len(bounced) == 1
        assert bounced[0].payload == payload

    def test_submit_to_ingress_drop(self, tor_program, tor_p4info):
        stack, _client = build_programmed(
            tor_program, tor_p4info, faults=["l3_submit_to_ingress_drop"]
        )
        payload = deparse_packet(make_ipv4_packet(0x0A010001))
        assert stack.packet_out(
            PacketOut(payload=payload, egress_port=0, submit_to_ingress=True)
        ).ok
        assert stack.drain_egress() == []

    def test_ipv6_router_solicitation_emission(self, tor_program, tor_p4info):
        stack, _client = build_programmed(
            tor_program, tor_p4info, faults=["ipv6_router_solicitation"]
        )
        obs = stack.send_packet(deparse_packet(make_ipv4_packet(0x0A010001)), 1)
        assert obs.extra_egress  # unsolicited RS packet alongside
        port, payload = obs.extra_egress[0]
        assert payload[12:14] == (0x86DD).to_bytes(2, "big")
