"""Tests for repro.analysis: the static P4-model linter.

Three layers of coverage:

* clean shipped programs produce **zero** diagnostics (no false positives),
* every seeded model fault from the catalogue is either flagged with its
  expected diagnostic code or explicitly xfailed as dynamic-only,
* synthetic broken programs trigger each structural/semantic pass, and the
  harness/campaign lint gate refuses to run a campaign on an error.
"""

import pytest

from repro.analysis import analyze_program, run_structural_passes
from repro.analysis.diagnostics import (
    ACTION_NEVER_FIRES,
    ACTION_SCOPE,
    DANGLING_REF,
    INVALID_HEADER_READ,
    KEY_NAME_DRIFT,
    KEY_SHAPE,
    PARSER_PATTERN,
    REF_CYCLE,
    REF_WIDTH_MISMATCH,
    RESTRICTION_ACCESSOR,
    RESTRICTION_SYNTAX,
    RESTRICTION_UNKNOWN_KEY,
    RESTRICTION_UNSAT,
    TABLE_NEVER_HITS,
    UNDEFINED_FIELD,
    UNREACHABLE_BRANCH,
    UNREACHABLE_TABLE,
    WIDTH_MISMATCH,
    Severity,
)
from repro.p4 import ast
from repro.p4.ast import (
    NO_ACTION,
    Action,
    ActionParamSpec,
    ActionRef,
    BinOp,
    Cmp,
    Const,
    FieldRef,
    If,
    IsValid,
    MatchKind,
    ModelConstructionError,
    P4Program,
    ParserSpec,
    Seq,
    Table,
    TableApply,
    TableKey,
    assign,
    seq,
)
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)
from repro.p4.programs.common import COMMON_METADATA, STANDARD_HEADERS
from repro.switch import PinsSwitchStack
from repro.switch.model_faults import MODEL_TRANSFORMS, apply_model_faults
from repro.switchv.campaign import CampaignConfig, run_fault_campaign
from repro.switchv.harness import SwitchVHarness
from repro.switchv.report import IncidentKind, render_diagnostics

ALL_BUILDERS = [
    build_toy_program,
    build_tor_program,
    build_wan_program,
    build_cerberus_program,
]


# ----------------------------------------------------------------------
# Synthetic-program scaffolding
# ----------------------------------------------------------------------
def _program(*nodes, parser="ethernet_ipv4_ipv6"):
    return P4Program(
        name="synthetic",
        headers=STANDARD_HEADERS,
        metadata=COMMON_METADATA,
        parser=ParserSpec(parser),
        ingress=Seq(tuple(nodes)),
        role="test",
    )


def _table(name="t1", keys=None, actions=None, **kwargs):
    if keys is None:
        keys = (TableKey(FieldRef("meta.vrf_id"), MatchKind.EXACT, name="vrf_id"),)
    if actions is None:
        actions = (ActionRef(NO_ACTION),)
    return Table(
        name=name,
        keys=tuple(keys),
        actions=tuple(actions),
        default_action=NO_ACTION,
        size=4,
        **kwargs,
    )


def _codes(program, semantic=True):
    return analyze_program(program, semantic=semantic).codes()


# ----------------------------------------------------------------------
# No false positives on the shipped models
# ----------------------------------------------------------------------
class TestCleanPrograms:
    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_zero_diagnostics(self, build):
        report = analyze_program(build())
        assert report.semantic_ran
        assert not report.diagnostics, [repr(d) for d in report.diagnostics]

    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_render_says_clean(self, build):
        text = render_diagnostics(analyze_program(build()))
        assert "0 error(s), 0 warning(s)" in text
        assert "usable as a specification" in text


# ----------------------------------------------------------------------
# Seeded model faults from the catalogue
# ----------------------------------------------------------------------
# Fault name -> (expected code, expected table) for the statically
# detectable ones; everything else only manifests dynamically and is an
# explicit xfail so a future static pass that catches it shows up as XPASS.
STATICALLY_DETECTABLE = {
    "model_wrong_icmp_field": (KEY_NAME_DRIFT, "acl_ingress_tbl"),
}


class TestSeededFaults:
    @pytest.mark.parametrize("fault", sorted(MODEL_TRANSFORMS))
    def test_catalogue_fault(self, fault):
        build = (
            build_cerberus_program
            if fault.startswith("cerberus")
            else build_tor_program
        )
        model = apply_model_faults(build(), [fault])
        report = analyze_program(model)
        if fault in STATICALLY_DETECTABLE:
            code, table = STATICALLY_DETECTABLE[fault]
            hits = report.by_code(code)
            assert hits, f"{fault}: expected {code}, got {report.diagnostics}"
            assert any(d.table_name == table for d in hits)
        else:
            # These models are well-formed specifications that are simply
            # *wrong about the switch*; the linter must stay silent.
            assert not report.diagnostics, [repr(d) for d in report.diagnostics]
            pytest.xfail(f"{fault} is only detectable dynamically")


# ----------------------------------------------------------------------
# Structural passes on synthetic broken programs
# ----------------------------------------------------------------------
class TestStructuralPasses:
    def test_undefined_field(self):
        table = _table(
            keys=(TableKey(FieldRef("meta.no_such_field"), MatchKind.EXACT),)
        )
        report = analyze_program(_program(TableApply(table)))
        assert UNDEFINED_FIELD in report.codes()
        assert not report.semantic_ran  # errors stop the semantic stage

    def test_width_mismatch_in_action_body(self):
        # meta.vrf_id is 16 bits, meta.l3_admit is 1 bit: only the program
        # context can see the clash, so the constructor cannot catch it.
        bad = Action("bad_copy", body=(assign("meta.vrf_id", FieldRef("meta.l3_admit")),))
        table = _table(actions=(ActionRef(bad),))
        assert WIDTH_MISMATCH in _codes(_program(TableApply(table)))

    def test_width_mismatch_in_condition(self):
        cond = Cmp("==", FieldRef("meta.vrf_id"), FieldRef("meta.l3_admit"))
        node = If(cond, seq(), seq(), label="clash")
        assert WIDTH_MISMATCH in _codes(_program(node))

    def test_dangling_ref(self):
        table = _table(
            keys=(
                TableKey(
                    FieldRef("meta.vrf_id"),
                    MatchKind.EXACT,
                    name="vrf_id",
                    refers_to=("no_such_tbl", "vrf_id"),
                ),
            )
        )
        assert DANGLING_REF in _codes(_program(TableApply(table)))

    def test_ref_width_mismatch(self):
        owner = _table(
            name="owner_tbl",
            keys=(TableKey(FieldRef("meta.l3_admit"), MatchKind.EXACT, name="flag"),),
        )
        user = _table(
            name="user_tbl",
            keys=(
                TableKey(
                    FieldRef("meta.vrf_id"),
                    MatchKind.EXACT,
                    name="vrf_id",
                    refers_to=("owner_tbl", "flag"),
                ),
            ),
        )
        codes = _codes(_program(TableApply(owner), TableApply(user)))
        assert REF_WIDTH_MISMATCH in codes

    def test_ref_cycle(self):
        a = _table(
            name="a_tbl",
            keys=(
                TableKey(
                    FieldRef("meta.vrf_id"),
                    MatchKind.EXACT,
                    name="vrf_id",
                    refers_to=("b_tbl", "nexthop"),
                ),
            ),
        )
        b = _table(
            name="b_tbl",
            keys=(
                TableKey(
                    FieldRef("meta.nexthop_id"),
                    MatchKind.EXACT,
                    name="nexthop",
                    refers_to=("a_tbl", "vrf_id"),
                ),
            ),
        )
        assert REF_CYCLE in _codes(_program(TableApply(a), TableApply(b)))

    def test_multiple_lpm_keys(self):
        table = _table(
            keys=(
                TableKey(FieldRef("ipv4.dst_addr"), MatchKind.LPM, name="dst"),
                TableKey(FieldRef("ipv4.src_addr"), MatchKind.LPM, name="src"),
            )
        )
        program = _program(
            If(IsValid("ipv4"), seq(TableApply(table)), seq(), label="guard")
        )
        assert KEY_SHAPE in _codes(program, semantic=False)

    def test_contradictory_action_scope(self):
        ref = ActionRef(NO_ACTION, default_only=True, table_only=True)
        table = _table(actions=(ref,))
        assert ACTION_SCOPE in _codes(_program(TableApply(table)), semantic=False)

    def test_restriction_syntax(self):
        table = _table(entry_restriction="((this does not parse")
        assert RESTRICTION_SYNTAX in _codes(_program(TableApply(table)), semantic=False)

    def test_restriction_unknown_key(self):
        table = _table(entry_restriction="bogus_key != 0")
        assert RESTRICTION_UNKNOWN_KEY in _codes(
            _program(TableApply(table)), semantic=False
        )

    def test_restriction_bad_accessor(self):
        # ::mask is meaningless on an EXACT key.
        table = _table(entry_restriction="vrf_id::mask == 0")
        assert RESTRICTION_ACCESSOR in _codes(
            _program(TableApply(table)), semantic=False
        )

    def test_structural_only_report_is_labelled(self):
        table = _table(
            keys=(TableKey(FieldRef("meta.no_such_field"), MatchKind.EXACT),)
        )
        report = analyze_program(_program(TableApply(table)))
        text = render_diagnostics(report)
        assert "structural only" in text
        assert all(d.severity is Severity.ERROR for d in report.errors)


# ----------------------------------------------------------------------
# SMT-backed semantic passes
# ----------------------------------------------------------------------
class TestSemanticPasses:
    def test_unknown_parser_pattern(self):
        report = analyze_program(_program(parser="no_such_pattern"))
        assert PARSER_PATTERN in report.codes()

    def test_unsat_restriction(self):
        table = _table(entry_restriction="vrf_id == 1 && vrf_id == 2")
        report = analyze_program(_program(TableApply(table)))
        assert RESTRICTION_UNSAT in report.codes()
        assert all(d.is_error for d in report.by_code(RESTRICTION_UNSAT))

    def test_unreachable_branch(self):
        # No parser profile produces a packet that is both IPv4 and IPv6.
        cond = ast.BoolOp("and", (IsValid("ipv4"), IsValid("ipv6")))
        node = If(cond, seq(), seq(), label="both_stacks")
        report = analyze_program(_program(node))
        hits = report.by_code(UNREACHABLE_BRANCH)
        assert any("both_stacks" in d.location for d in hits)

    def test_unreachable_table_under_dead_branch(self):
        cond = ast.BoolOp("and", (IsValid("ipv4"), IsValid("ipv6")))
        table = _table(name="dead_tbl")
        node = If(cond, seq(TableApply(table)), seq(), label="both_stacks")
        report = analyze_program(_program(node))
        assert UNREACHABLE_TABLE in report.codes()
        assert TABLE_NEVER_HITS in report.codes()

    def test_invalid_header_read_in_condition(self):
        # Reading ipv4.ttl without an IsValid(ipv4) guard: the eth-only
        # and IPv6 profiles reach this condition with ipv4 invalid.
        cond = Cmp("<=", FieldRef("ipv4.ttl"), Const(1, 8))
        node = If(cond, seq(), seq(), label="unguarded_ttl")
        report = analyze_program(_program(node))
        hits = report.by_code(INVALID_HEADER_READ)
        assert any("ipv4.ttl" in d.message for d in hits)

    def test_invalid_header_read_in_exact_key(self):
        table = _table(
            name="route",
            keys=(TableKey(FieldRef("ipv4.dst_addr"), MatchKind.EXACT, name="dst"),),
        )
        report = analyze_program(_program(TableApply(table)))
        assert INVALID_HEADER_READ in report.codes()

    def test_guarded_read_is_clean(self):
        cond = Cmp("<=", FieldRef("ipv4.ttl"), Const(1, 8))
        node = If(
            ast.BoolOp("and", (IsValid("ipv4"), cond)), seq(), seq(), label="guarded"
        )
        report = analyze_program(_program(node))
        assert INVALID_HEADER_READ not in report.codes()

    def test_timings_recorded(self):
        report = analyze_program(build_toy_program())
        assert report.structural_seconds > 0
        assert report.semantic_seconds > 0


# ----------------------------------------------------------------------
# Constructor-time validation (repro.p4.ast)
# ----------------------------------------------------------------------
class TestConstructorChecks:
    def test_const_does_not_fit(self):
        with pytest.raises(ModelConstructionError, match="does not fit"):
            Const(256, 8)

    def test_cmp_literal_width_mismatch(self):
        with pytest.raises(ModelConstructionError, match="widths differ"):
            Cmp("==", Const(1, 8), Const(1, 16))

    def test_binop_rejects_boolean_operand(self):
        with pytest.raises(ModelConstructionError, match="boolean"):
            BinOp("+", IsValid("ipv4"), Const(1, 8))

    def test_if_rejects_bitvector_condition_with_label(self):
        with pytest.raises(ModelConstructionError, match="if my_label"):
            If(Const(1, 1), seq(), seq(), label="my_label")

    def test_action_undeclared_parameter_names_action(self):
        with pytest.raises(ModelConstructionError, match="action set_x"):
            Action("set_x", body=(assign("meta.vrf_id", ast.Param("ghost")),))

    def test_action_operand_width_clash_names_action(self):
        with pytest.raises(ModelConstructionError, match="action widen"):
            Action(
                "widen",
                params=(ActionParamSpec("v", 8),),
                body=(
                    assign(
                        "meta.vrf_id", BinOp("+", ast.Param("v"), Const(1, 16))
                    ),
                ),
            )

    def test_table_duplicate_key_names_table(self):
        with pytest.raises(ModelConstructionError, match="table dup_tbl"):
            Table(
                name="dup_tbl",
                keys=(
                    TableKey(FieldRef("meta.vrf_id"), MatchKind.EXACT, name="k"),
                    TableKey(FieldRef("meta.nexthop_id"), MatchKind.EXACT, name="k"),
                ),
                actions=(ActionRef(NO_ACTION),),
            )


# ----------------------------------------------------------------------
# The lint gate in the harness and campaign driver
# ----------------------------------------------------------------------
def _broken_model():
    table = _table(
        keys=(
            TableKey(
                FieldRef("meta.vrf_id"),
                MatchKind.EXACT,
                name="vrf_id",
                refers_to=("no_such_tbl", "vrf_id"),
            ),
        )
    )
    return _program(TableApply(table))


class TestLintGate:
    def test_harness_refuses_broken_model(self):
        harness = SwitchVHarness(
            _broken_model(), PinsSwitchStack(build_tor_program()), lint_model=True
        )
        assert harness.p4info is None
        assert harness.lint_report is not None and harness.lint_report.has_errors
        report = harness.validate_control_plane()
        assert report.incidents.count >= 1
        assert {i.kind for i in report.incidents.incidents} == {
            IncidentKind.MODEL_ERROR
        }
        assert "repro-analysis" in report.incidents.by_source()

    def test_harness_accepts_clean_model(self):
        harness = SwitchVHarness(
            build_toy_program(), PinsSwitchStack(build_toy_program()), lint_model=True
        )
        assert harness.p4info is not None
        assert harness.lint_report is not None
        assert not harness.lint_report.has_errors

    def test_campaign_early_return_on_lint_error(self, monkeypatch):
        monkeypatch.setattr(
            "repro.switchv.campaign.apply_model_faults",
            lambda program, faults: _broken_model(),
        )
        outcome = run_fault_campaign(
            "model_wrong_icmp_field",
            "pins",
            CampaignConfig(lint_model=True, run_trivial=False),
        )
        assert outcome.detected
        assert outcome.detected_by == ["repro-analysis"]
        assert outcome.incident_count >= 1

    def test_campaign_warning_does_not_gate(self):
        # key-name-drift is a warning: the campaign must still run and
        # detect the fault dynamically.
        outcome = run_fault_campaign(
            "model_wrong_icmp_field",
            "pins",
            CampaignConfig(
                lint_model=True,
                fuzz_writes=3,
                fuzz_updates_per_write=5,
                workload_entries=20,
                run_trivial=False,
            ),
        )
        assert outcome.incidents is not None
        assert outcome.detected_by != ["repro-analysis"]


# ----------------------------------------------------------------------
# run_structural_passes in isolation
# ----------------------------------------------------------------------
class TestStructuralEntryPoint:
    def test_returns_diagnostic_list(self):
        diags = run_structural_passes(_broken_model())
        assert diags
        assert all(hasattr(d, "code") for d in diags)

    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_clean_on_shipped(self, build):
        assert run_structural_passes(build()) == []


# ----------------------------------------------------------------------
# Action-level reachability (the @refers_to chain refinement)
# ----------------------------------------------------------------------
def _blocked_action_program():
    """user_tbl has two actions; one's parameter @refers_to a table whose
    restriction admits no entries, so only that action can never fire."""
    target = _table(
        name="target_tbl",
        keys=(TableKey(FieldRef("meta.nexthop_id"), MatchKind.EXACT, name="nid"),),
        entry_restriction="nid == 1 && nid == 2",
    )
    use_target = Action(
        "use_target",
        params=(ActionParamSpec("nid", 16, refers_to=("target_tbl", "nid")),),
        body=(assign("meta.nexthop_id", ast.Param("nid")),),
    )
    no_ref = Action("no_ref", body=(assign("meta.l3_admit", Const(1, 1)),))
    user = _table(name="user_tbl", actions=(ActionRef(use_target), ActionRef(no_ref)))
    return _program(TableApply(target), TableApply(user))


class TestActionReach:
    def test_blocked_action_flagged_sibling_spared(self):
        report = analyze_program(_blocked_action_program())
        never = report.by_code(ACTION_NEVER_FIRES)
        assert len(never) == 1
        (diag,) = never
        assert diag.severity is Severity.WARNING
        assert diag.table_name == "user_tbl"
        assert "use_target" in diag.location
        assert "target_tbl" in diag.message
        assert "no_ref" not in diag.location

    def test_summary_counts_reachable_actions(self):
        report = analyze_program(_blocked_action_program())
        # use_target (blocked), no_ref (reachable), target_tbl's NoAction
        # (suppressed by the table-level unsat-restriction finding).
        assert report.summary["actions_total"] == 3
        assert report.summary["actions_reachable"] == 1

    def test_unsat_table_suppresses_its_own_actions(self):
        report = analyze_program(_blocked_action_program())
        assert all(
            d.table_name != "target_tbl" for d in report.by_code(ACTION_NEVER_FIRES)
        )

    def test_witness_is_the_blocking_tables_core(self):
        report = analyze_program(_blocked_action_program(), witnesses=True)
        (diag,) = report.by_code(ACTION_NEVER_FIRES)
        witness = diag.witness
        assert witness is not None and witness.kind == "unsat-core"
        assert len(witness.conjuncts) == 2
        assert witness.replays()

    def test_shipped_programs_have_all_actions_reachable(self):
        for build in ALL_BUILDERS:
            report = analyze_program(build())
            assert report.summary["actions_total"] > 0
            assert (
                report.summary["actions_reachable"]
                == report.summary["actions_total"]
            )


# ----------------------------------------------------------------------
# Witness construction and replay
# ----------------------------------------------------------------------
class TestWitnesses:
    def test_invalid_read_carries_replaying_packet(self):
        cond = Cmp("<=", FieldRef("ipv4.ttl"), Const(1, 8))
        node = If(cond, seq(), seq(), label="unguarded_ttl")
        report = analyze_program(_program(node), witnesses=True)
        hits = report.by_code(INVALID_HEADER_READ)
        assert hits
        for diag in hits:
            assert diag.witness is not None
            assert diag.witness.kind == "packet"
            assert diag.witness.replays()

    def test_restriction_unsat_core_is_minimal(self):
        table = _table(
            entry_restriction="vrf_id != 0 && vrf_id == 0 && vrf_id != 3"
        )
        report = analyze_program(_program(TableApply(table)), witnesses=True)
        (diag,) = report.by_code(RESTRICTION_UNSAT)
        witness = diag.witness
        assert witness is not None and witness.kind == "unsat-core"
        # vrf_id != 3 is redundant: the contradiction is the other two.
        assert len(witness.conjuncts) == 2
        assert not any("3" in text for text in witness.conjuncts)
        assert witness.replays()

    def test_witnesses_off_by_default(self):
        table = _table(entry_restriction="vrf_id == 1 && vrf_id == 2")
        report = analyze_program(_program(TableApply(table)))
        (diag,) = report.by_code(RESTRICTION_UNSAT)
        assert diag.witness is None

    def test_rendered_report_shows_witness_lines(self):
        table = _table(entry_restriction="vrf_id == 1 && vrf_id == 2")
        report = analyze_program(_program(TableApply(table)), witnesses=True)
        text = render_diagnostics(report)
        assert "minimal unsat core" in text

    def test_witness_json_round_trip(self):
        cond = Cmp("<=", FieldRef("ipv4.ttl"), Const(1, 8))
        node = If(cond, seq(), seq(), label="unguarded_ttl")
        report = analyze_program(_program(node), witnesses=True)
        from repro.switchv.report import diagnostics_to_json

        payload = diagnostics_to_json(report)
        kinds = {
            d["witness"]["kind"]
            for d in payload["diagnostics"]
            if d["witness"] is not None
        }
        assert "packet" in kinds


# ----------------------------------------------------------------------
# The reach checker's LRU witness cache
# ----------------------------------------------------------------------
class TestReachCache:
    def _checker(self):
        from repro.analysis.semantic import _ProfileRun, _ReachChecker
        from repro.smt import Solver

        run = _ProfileRun(profile=None, constraints=[])
        return _ReachChecker(run, Solver())

    def test_cache_hit_skips_the_solver(self):
        from repro.smt import terms as T

        checker = self._checker()
        v = T.bv_var("v", 8)
        # eq(5): all-zeros and all-ones candidates miss, so the solver
        # answers and its model {v: 5} is cached.
        assert checker.sat(v.eq(T.bv_const(5, 8)))
        assert checker.cache_hits == 0
        assert checker._witnesses == [{"v": 5}]
        # uge(4): the cached witness satisfies it — no solver call.
        assert checker.sat(v.uge(T.bv_const(4, 8)))
        assert checker.cache_hits == 1

    def test_hit_moves_witness_to_front(self):
        from repro.smt import terms as T

        checker = self._checker()
        names = [f"v{i}" for i in range(3)]
        for name in names:
            assert checker.sat(T.bv_var(name, 8).eq(T.bv_const(5, 8)))
        assert checker._witnesses[0] == {"v2": 5}
        # Hitting v0's witness (at the tail) must move it to the front.
        assert checker.sat(T.bv_var("v0", 8).uge(T.bv_const(4, 8)))
        assert checker.cache_hits == 1
        assert checker._witnesses[0] == {"v0": 5}

    def test_capacity_evicts_the_tail(self):
        from repro.smt import terms as T

        checker = self._checker()
        count = checker._MAX_WITNESSES + 2
        for i in range(count):
            assert checker.sat(T.bv_var(f"v{i}", 8).eq(T.bv_const(5, 8)))
        assert len(checker._witnesses) == checker._MAX_WITNESSES
        # The two oldest witnesses (v0, v1) fell off the tail.
        cached = {name for witness in checker._witnesses for name in witness}
        assert "v0" not in cached and "v1" not in cached

    def test_summary_reports_cache_hits(self):
        report = analyze_program(build_tor_program())
        assert "reach_cache_hits" in report.summary
        assert report.summary["reach_cache_hits"] >= 0


# ----------------------------------------------------------------------
# Pass selection (--only / --skip)
# ----------------------------------------------------------------------
class TestPassSelection:
    def _mixed(self):
        table = _table(entry_restriction="vrf_id == 1 && vrf_id == 2")
        cond = Cmp("<=", FieldRef("ipv4.ttl"), Const(1, 8))
        return _program(
            TableApply(table), If(cond, seq(), seq(), label="unguarded_ttl")
        )

    def test_only_scopes_to_one_pass(self):
        report = analyze_program(self._mixed(), only=["restriction-sat"])
        assert set(report.codes()) == {RESTRICTION_UNSAT}

    def test_skip_removes_one_pass(self):
        report = analyze_program(self._mixed(), skip=["invalid-reads"])
        assert INVALID_HEADER_READ not in report.codes()
        assert RESTRICTION_UNSAT in report.codes()

    def test_unknown_pass_name_raises(self):
        with pytest.raises(ValueError, match="unknown pass"):
            analyze_program(self._mixed(), only=["no-such-pass"])

    def test_structural_errors_still_gate_deselected(self):
        # Even with every structural pass deselected from the report, a
        # structurally broken model must not reach the SMT encoders.
        report = analyze_program(_broken_model(), only=["restriction-sat"])
        assert report.diagnostics == []
        assert not report.semantic_ran

    def test_list_passes_registry(self):
        from repro.analysis import list_passes

        passes = dict(list_passes())
        assert passes["restriction-sat"] == "semantic"
        assert passes["references"] == "structural"
        assert passes["restriction-compat"] == "contract"
        assert len(passes) == len(list_passes())  # names are unique

    def test_cli_only_flag(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["toy", "--only", "restriction-sat,invalid-reads"]) == 0
        assert "0 error(s)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Deterministic output across hash randomization
# ----------------------------------------------------------------------
def _drifty_program():
    """A program with a spread of findings (errors and warnings, several
    tables and branches) — the determinism stress input."""
    unsat = _table(name="unsat_tbl", entry_restriction="vrf_id == 1 && vrf_id == 2")
    dead_cond = ast.BoolOp("and", (IsValid("ipv4"), IsValid("ipv6")))
    dead = If(dead_cond, seq(TableApply(_table(name="dead_tbl"))), seq(), label="both")
    read = If(
        Cmp("<=", FieldRef("ipv4.ttl"), Const(1, 8)), seq(), seq(), label="ttl"
    )
    return _program(TableApply(unsat), dead, read)


_RENDER_CHILD = """
import json
import sys

sys.path.insert(0, sys.argv[1])
from tests.test_analysis import _drifty_program
from repro.analysis import analyze_program
from repro.switchv.report import diagnostics_to_json, render_diagnostics

report = analyze_program(_drifty_program(), witnesses=True)
print(render_diagnostics(report))
print(json.dumps(diagnostics_to_json(report), sort_keys=True))
"""


class TestDeterministicOutput:
    def _render_in_child(self, hash_seed):
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        env["PYTHONHASHSEED"] = hash_seed
        proc = subprocess.run(
            [sys.executable, "-c", _RENDER_CHILD, str(repo)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
            timeout=300,
        )
        return proc.stdout

    def test_render_is_byte_identical_across_hash_seeds(self):
        assert self._render_in_child("1") == self._render_in_child("2")

    def test_diagnostics_are_sorted(self):
        report = analyze_program(_drifty_program(), witnesses=True)
        keys = [d.sort_key() for d in report.diagnostics]
        assert keys == sorted(keys)
        assert report.diagnostics[0].is_error  # errors sort first
