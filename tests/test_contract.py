"""Tests for repro.analysis.contract: cross-program role-contract drift.

The shipped role programs (toy/tor/wan/cerberus) are instantiated from one
component library, so every pairwise comparison must be clean — and every
seeded drift edit (renamed key, reordered keys, widened parameter, dropped
@refers_to, tightened restriction) must be flagged with the right code and
a replaying witness.
"""

from dataclasses import replace
from itertools import combinations

import pytest

from repro.analysis import analyze_contract
from repro.analysis.diagnostics import (
    CONTRACT_ACTION_DRIFT,
    CONTRACT_ID_DRIFT,
    CONTRACT_KEY_DRIFT,
    CONTRACT_REF_DRIFT,
    CONTRACT_RESTRICTION_DRIFT,
)
from repro.analysis.witness import KIND_ENTRY
from repro.p4 import ast
from repro.p4.ast import Action, ActionParamSpec, ActionRef, assign
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)
from repro.switch.model_faults import _map_tables
from repro.switchv import fleet
from repro.switchv.fleet import FleetTask
from repro.switchv.report import IncidentKind, IncidentLog

ALL_BUILDERS = [
    build_toy_program,
    build_tor_program,
    build_wan_program,
    build_cerberus_program,
]


def _edit_tables(program, fn):
    return replace(
        program,
        ingress=_map_tables(program.ingress, fn),
        egress=_map_tables(program.egress, fn),
    )


# ----------------------------------------------------------------------
# Seeded drift edits (each returns a drifted copy of a role program)
# ----------------------------------------------------------------------
def rename_l3_admit_key(program):
    """Rename a shared match field: the controller's field name diverges."""

    def fn(table):
        if table.name != "l3_admit_tbl":
            return table
        keys = tuple(
            replace(k, name="dmac") if k.key_name == "dst_mac" else k
            for k in table.keys
        )
        return replace(table, keys=keys)

    return _edit_tables(program, fn)


def reorder_l3_admit_keys(program):
    """Same fields, different order: p4info match-field ids move."""

    def fn(table):
        if table.name != "l3_admit_tbl":
            return table
        return replace(table, keys=tuple(reversed(table.keys)))

    return _edit_tables(program, fn)


def widen_set_vrf_param(program):
    """Widen a shared action parameter from 16 to 24 bits."""
    wide = Action(
        "set_vrf",
        params=(ActionParamSpec("vrf_id", 24, refers_to=("vrf_tbl", "vrf_id")),),
        body=(assign("meta.vrf_id", ast.Param("vrf_id")),),
    )

    def fn(table):
        refs = tuple(
            replace(ref, action=wide) if ref.action.name == "set_vrf" else ref
            for ref in table.actions
        )
        return table if refs == table.actions else replace(table, actions=refs)

    return _edit_tables(program, fn)


def drop_ipv4_vrf_ref(program):
    """Drop the @refers_to(vrf_tbl, vrf_id) edge from ipv4_tbl's key."""

    def fn(table):
        if table.name != "ipv4_tbl":
            return table
        keys = tuple(
            replace(k, refers_to=None) if k.key_name == "vrf_id" else k
            for k in table.keys
        )
        return replace(table, keys=keys)

    return _edit_tables(program, fn)


def tighten_vrf_restriction(program):
    """Reserve one more VRF id in a single role only."""

    def fn(table):
        if table.name != "vrf_tbl":
            return table
        return replace(table, entry_restriction="vrf_id != 0 && vrf_id != 1")

    return _edit_tables(program, fn)


DRIFTS = [
    pytest.param(rename_l3_admit_key, CONTRACT_KEY_DRIFT, id="rename-key"),
    pytest.param(reorder_l3_admit_keys, CONTRACT_ID_DRIFT, id="reorder-keys"),
    pytest.param(widen_set_vrf_param, CONTRACT_ACTION_DRIFT, id="widen-param"),
    pytest.param(drop_ipv4_vrf_ref, CONTRACT_REF_DRIFT, id="drop-ref"),
    pytest.param(
        tighten_vrf_restriction, CONTRACT_RESTRICTION_DRIFT, id="tighten-restriction"
    ),
]


class TestShippedProgramsAgree:
    @pytest.mark.parametrize(
        "build_a,build_b",
        list(combinations(ALL_BUILDERS, 2)),
        ids=lambda b: b.__name__.removeprefix("build_").removesuffix("_program"),
    )
    def test_every_shipped_pair_is_clean(self, build_a, build_b):
        report = analyze_contract([build_a(), build_b()])
        assert report.diagnostics == []
        assert report.summary["pairs"] == 1
        assert report.summary["tables_aligned"] > 0

    def test_all_roles_at_once(self):
        report = analyze_contract([b() for b in ALL_BUILDERS])
        assert report.diagnostics == []
        assert report.summary["pairs"] == 6


class TestSeededDrift:
    @pytest.mark.parametrize("edit,code", DRIFTS)
    def test_drift_is_flagged_as_error(self, edit, code):
        report = analyze_contract([build_tor_program(), edit(build_wan_program())])
        codes = {d.code for d in report.diagnostics}
        assert code in codes
        assert all(d.is_error for d in report.diagnostics)

    @pytest.mark.parametrize("edit,code", DRIFTS)
    def test_drift_is_the_only_finding(self, edit, code):
        report = analyze_contract([build_tor_program(), edit(build_wan_program())])
        assert {d.code for d in report.diagnostics} == {code}

    def test_rename_names_both_sides(self):
        report = analyze_contract(
            [build_tor_program(), rename_l3_admit_key(build_wan_program())]
        )
        (diag,) = report.diagnostics
        assert "dst_mac" in diag.message and "dmac" in diag.message
        assert diag.table_name == "l3_admit_tbl"

    def test_width_drift_witness_replays(self):
        report = analyze_contract(
            [build_tor_program(), widen_set_vrf_param(build_wan_program())]
        )
        (diag,) = report.by_code(CONTRACT_ACTION_DRIFT)
        witness = diag.witness
        assert witness is not None and witness.kind == KIND_ENTRY
        # The witness value fits the 24-bit role but not the 16-bit one,
        # and re-evaluating the attached term under it proves that.
        assert witness.assignment()["set_vrf.vrf_id::value"] == 1 << 16
        assert witness.replays()

    def test_restriction_drift_witness_is_the_disputed_entry(self):
        report = analyze_contract(
            [build_tor_program(), tighten_vrf_restriction(build_wan_program())]
        )
        (diag,) = report.by_code(CONTRACT_RESTRICTION_DRIFT)
        # tor accepts vrf_id=1; the tightened wan rejects it.  The witness
        # must be exactly that entry (vrf_id=1 is the only disputed value),
        # and replaying it on the drift formula must succeed.
        assert "sai_tor" in diag.location
        witness = diag.witness
        assert witness is not None and witness.kind == KIND_ENTRY
        assert witness.assignment()["vrf_tbl.vrf_id::value"] == 1
        assert witness.replays()

    def test_restriction_drift_without_witnesses(self):
        report = analyze_contract(
            [build_tor_program(), tighten_vrf_restriction(build_wan_program())],
            witnesses=False,
        )
        (diag,) = report.by_code(CONTRACT_RESTRICTION_DRIFT)
        assert diag.witness is None

    def test_pass_selection_scopes_the_findings(self):
        programs = [build_tor_program(), tighten_vrf_restriction(build_wan_program())]
        only_keys = analyze_contract(programs, selected=["key-align"])
        assert only_keys.diagnostics == []
        only_compat = analyze_contract(programs, selected=["restriction-compat"])
        assert {d.code for d in only_compat.diagnostics} == {
            CONTRACT_RESTRICTION_DRIFT
        }

    def test_contract_requires_two_programs(self):
        with pytest.raises(ValueError):
            analyze_contract([build_tor_program()])


class TestFleetContractGate:
    def _tasks(self, *kinds):
        return [FleetTask("fault", kind, "some_fault") for kind in kinds]

    def test_single_stack_fleet_has_nothing_to_cross_check(self):
        incidents = IncidentLog()
        assert fleet._contract_gate(self._tasks("pins", "pins"), incidents) is None
        assert incidents.count == 0

    def test_mixed_clean_fleet_passes_the_gate(self):
        incidents = IncidentLog()
        report = fleet._contract_gate(self._tasks("pins", "cerberus"), incidents)
        assert report is not None
        assert report.errors == []
        assert incidents.count == 0

    def test_drifted_role_becomes_model_error_incident(self, monkeypatch):
        monkeypatch.setitem(
            fleet.STACK_PROGRAMS,
            "cerberus",
            lambda: tighten_vrf_restriction(build_cerberus_program()),
        )
        incidents = IncidentLog()
        report = fleet._contract_gate(self._tasks("pins", "cerberus"), incidents)
        assert report is not None and report.has_errors
        assert incidents.count >= 1
        incident = incidents.incidents[0]
        assert incident.kind is IncidentKind.MODEL_ERROR
        assert incident.source == "repro-analysis"
        assert "contract[contract-restriction-drift]" in incident.summary


class TestContractCli:
    def test_clean_pair_exits_zero(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--contract", "tor", "wan"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_contract_needs_two_programs(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--contract", "tor"]) == 2

    def test_json_output_is_parseable_and_sorted(self, capsys):
        import json

        from repro.analysis.__main__ import main

        assert main(["--contract", "tor", "wan", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["errors"] == 0
        assert payload[0]["summary"]["pairs"] == 1
