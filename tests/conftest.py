"""Shared fixtures: programs, catalogues, entry builders, switches."""

import pytest

from repro.p4.p4info import build_p4info
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)
from repro.switch import PinsSwitchStack, ReferenceSwitch
from repro.workloads import EntryBuilder, baseline_entries


@pytest.fixture(scope="session")
def toy_program():
    return build_toy_program()


@pytest.fixture(scope="session")
def tor_program():
    return build_tor_program()


@pytest.fixture(scope="session")
def wan_program():
    return build_wan_program()


@pytest.fixture(scope="session")
def cerberus_program():
    return build_cerberus_program()


@pytest.fixture(scope="session")
def toy_p4info(toy_program):
    return build_p4info(toy_program)


@pytest.fixture(scope="session")
def tor_p4info(tor_program):
    return build_p4info(tor_program)


@pytest.fixture(scope="session")
def wan_p4info(wan_program):
    return build_p4info(wan_program)


@pytest.fixture(scope="session")
def cerberus_p4info(cerberus_program):
    return build_p4info(cerberus_program)


@pytest.fixture
def tor_builder(tor_p4info):
    return EntryBuilder(tor_p4info)


@pytest.fixture
def tor_stack(tor_program):
    return PinsSwitchStack(tor_program)


@pytest.fixture
def toy_reference(toy_program):
    return ReferenceSwitch(toy_program)


@pytest.fixture
def tor_baseline(tor_p4info):
    return baseline_entries(tor_p4info)
