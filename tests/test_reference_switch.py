"""Tests for the model-faithful reference switch."""

import pytest

from repro.bmv2.packet import deparse_packet, make_ipv4_packet
from repro.p4rt import codec
from repro.p4rt.messages import (
    PacketOut,
    ReadRequest,
    Update,
    UpdateType,
    WriteRequest,
)
from repro.p4rt.service import P4RuntimeClient
from repro.p4rt.status import Code
from repro.switch import ReferenceSwitch
from repro.workloads import EntryBuilder, baseline_entries


@pytest.fixture
def programmed(tor_program, tor_p4info, tor_baseline):
    switch = ReferenceSwitch(tor_program)
    client = P4RuntimeClient(switch)
    assert client.set_pipeline(tor_p4info).ok
    from repro.fuzzer.batching import make_batches

    for batch in make_batches(
        tor_p4info, [Update(UpdateType.INSERT, e) for e in tor_baseline]
    ):
        response = switch.write(WriteRequest(updates=tuple(batch)))
        assert response.ok, response.statuses
    return switch


class TestControlPlane:
    def test_write_before_config_fails(self, tor_program):
        switch = ReferenceSwitch(tor_program)
        from repro.p4rt.messages import TableEntry

        response = switch.write(
            WriteRequest(updates=(Update(UpdateType.INSERT, TableEntry(1, (), None)),))
        )
        assert response.statuses[0].code is Code.FAILED_PRECONDITION

    def test_duplicate_insert(self, programmed, tor_p4info):
        b = EntryBuilder(tor_p4info)
        client = P4RuntimeClient(programmed)
        assert client.insert(b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")).code is Code.ALREADY_EXISTS

    def test_constraint_enforced(self, programmed, tor_p4info):
        b = EntryBuilder(tor_p4info)
        client = P4RuntimeClient(programmed)
        assert client.insert(b.exact("vrf_tbl", {"vrf_id": 0}, "NoAction")).code is Code.INVALID_ARGUMENT

    def test_referential_integrity(self, programmed, tor_p4info):
        b = EntryBuilder(tor_p4info)
        client = P4RuntimeClient(programmed)
        dangling = b.lpm(
            "ipv4_tbl", {"vrf_id": 77}, "ipv4_dst", 0, 1, "set_nexthop_id", {"nexthop_id": 1}
        )
        assert client.insert(dangling).code is Code.INVALID_ARGUMENT
        still_used = b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction")
        assert client.delete(still_used).code is Code.FAILED_PRECONDITION

    def test_read_back_round_trips(self, programmed, tor_baseline):
        read = programmed.read(ReadRequest(table_id=0))
        assert {e.match_key() for e in read.entries} == {
            e.match_key() for e in tor_baseline
        }

    def test_table_size_guarantee(self, tor_program, tor_p4info):
        switch = ReferenceSwitch(tor_program)
        client = P4RuntimeClient(switch)
        client.set_pipeline(tor_p4info)
        b = EntryBuilder(tor_p4info)
        size = tor_p4info.table_by_name("vrf_tbl").size
        codes = [
            client.insert(b.exact("vrf_tbl", {"vrf_id": i}, "NoAction")).code
            for i in range(1, size + 5)
        ]
        assert codes[:size] == [Code.OK] * size
        assert Code.RESOURCE_EXHAUSTED in codes[size:]


class TestDataPlane:
    def test_forwarding_follows_model(self, programmed):
        obs = programmed.send_packet(
            deparse_packet(make_ipv4_packet(0x0A020099, ttl=12)), ingress_port=3
        )
        assert obs.egress_port == 2
        assert obs.packet.get("ipv4.ttl") == 11

    def test_punt_enqueues_packet_in(self, programmed):
        programmed.drain_packet_ins()
        obs = programmed.send_packet(
            deparse_packet(make_ipv4_packet(0x0AFFFF01)), ingress_port=1
        )
        assert obs.punted
        assert len(programmed.drain_packet_ins()) == 1

    def test_packet_out_direct(self, programmed):
        payload = deparse_packet(make_ipv4_packet(0x0B000001))
        assert programmed.packet_out(PacketOut(payload=payload, egress_port=5)).ok
        assert programmed.drain_egress() == [(5, payload)]

    def test_submit_to_ingress_traverses_pipeline(self, programmed):
        payload = deparse_packet(make_ipv4_packet(0x0A030001, ttl=9))
        assert programmed.packet_out(
            PacketOut(payload=payload, egress_port=0, submit_to_ingress=True)
        ).ok
        egress = programmed.drain_egress()
        assert egress and egress[0][0] == 3

    def test_hash_seed_changes_wcmp_choice_not_validity(self, tor_program, tor_p4info, tor_baseline):
        b = EntryBuilder(tor_p4info)
        extra = [
            b.wcmp_group(1, [(1, 1), (2, 1), (3, 1), (4, 1)]),
            b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0AC00000, 16,
                  "set_wcmp_group_id", {"wcmp_group_id": 1}),
        ]
        ports = set()
        for seed in range(6):
            switch = ReferenceSwitch(tor_program, hash_seed=seed)
            client = P4RuntimeClient(switch)
            client.set_pipeline(tor_p4info)
            from repro.fuzzer.batching import make_batches

            for batch in make_batches(
                tor_p4info,
                [Update(UpdateType.INSERT, e) for e in tor_baseline + extra],
            ):
                switch.write(WriteRequest(updates=tuple(batch)))
            obs = switch.send_packet(
                deparse_packet(make_ipv4_packet(0x0AC00001)), ingress_port=5
            )
            ports.add(obs.egress_port)
        assert ports <= {1, 2, 3, 4}
        assert len(ports) > 1  # different seeds pick different members
