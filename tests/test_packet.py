"""Tests for concrete packets: wire encode/decode and parser patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmv2.packet import (
    Packet,
    PacketError,
    deparse_packet,
    make_ipv4_packet,
    make_ipv6_packet,
    parse_packet,
)
from repro.p4.programs.common import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    IP_PROTOCOL_ICMP,
    IP_PROTOCOL_TCP,
    IP_PROTOCOL_UDP,
)


class TestConstruction:
    def test_ipv4_udp_packet(self):
        pkt = make_ipv4_packet(dst_addr=0x0A000001)
        assert pkt.valid_headers == {"ethernet", "ipv4", "udp"}
        assert pkt.get("ipv4.dst_addr") == 0x0A000001
        assert pkt.get("ethernet.ether_type") == ETHERTYPE_IPV4

    def test_ipv4_tcp_and_icmp(self):
        tcp = make_ipv4_packet(0x0A000001, protocol=IP_PROTOCOL_TCP)
        assert "tcp" in tcp.valid_headers
        icmp = make_ipv4_packet(0x0A000001, protocol=IP_PROTOCOL_ICMP)
        assert "icmp" in icmp.valid_headers

    def test_ipv6_packet(self):
        pkt = make_ipv6_packet(dst_addr=0x20010DB8 << 96)
        assert pkt.valid_headers == {"ethernet", "ipv6", "udp"}
        assert pkt.get("ethernet.ether_type") == ETHERTYPE_IPV6

    def test_copy_is_deep_for_fields(self):
        pkt = make_ipv4_packet(0x0A000001)
        clone = pkt.copy()
        clone.set("ipv4.ttl", 1)
        assert pkt.get("ipv4.ttl") != 1


class TestWireFormat:
    def test_roundtrip_ipv4(self):
        pkt = make_ipv4_packet(0x0A010203, ttl=7, payload=b"hello!")
        data = deparse_packet(pkt)
        # 14 (eth) + 20 (ipv4) + 8 (udp) + payload
        assert len(data) == 14 + 20 + 8 + 6
        parsed = parse_packet(data)
        assert parsed.signature() == pkt.signature()

    def test_roundtrip_ipv6(self):
        pkt = make_ipv6_packet(0x1234 << 96)
        parsed = parse_packet(deparse_packet(pkt))
        assert parsed.signature() == pkt.signature()

    def test_unknown_ethertype_leaves_payload(self):
        pkt = Packet()
        pkt.valid_headers.add("ethernet")
        pkt.fields.update(
            {
                "ethernet.dst_addr": 1,
                "ethernet.src_addr": 2,
                "ethernet.ether_type": 0x88CC,  # LLDP
            }
        )
        pkt.payload = b"tlvs"
        parsed = parse_packet(deparse_packet(pkt))
        assert parsed.valid_headers == {"ethernet"}
        assert parsed.payload == b"tlvs"

    def test_unknown_ip_protocol_stops_at_l3(self):
        pkt = make_ipv4_packet(0x0A000001, protocol=89)  # OSPF
        pkt.valid_headers.discard("udp")
        for name in list(pkt.fields):
            if name.startswith("udp."):
                del pkt.fields[name]
        parsed = parse_packet(deparse_packet(pkt))
        assert parsed.valid_headers == {"ethernet", "ipv4"}

    def test_truncated_packet_rejected(self):
        with pytest.raises(PacketError):
            parse_packet(b"\x00" * 10)  # shorter than an ethernet header

    def test_truncated_l3_rejected(self):
        header = (1).to_bytes(6, "big") + (2).to_bytes(6, "big") + ETHERTYPE_IPV4.to_bytes(2, "big")
        with pytest.raises(PacketError):
            parse_packet(header + b"\x00" * 8)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(PacketError):
            parse_packet(b"\x00" * 64, pattern="nonsense")


class TestWireProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 255),
        st.sampled_from([IP_PROTOCOL_UDP, IP_PROTOCOL_TCP, IP_PROTOCOL_ICMP, 50]),
        st.binary(max_size=64),
    )
    def test_ipv4_roundtrip_property(self, dst, src, ttl, protocol, payload):
        pkt = make_ipv4_packet(
            dst_addr=dst, src_addr=src, ttl=ttl, protocol=protocol, payload=payload
        )
        if protocol == 50:
            # make_ipv4_packet adds no L4 header for unknown protocols.
            pkt.valid_headers -= {"udp", "tcp", "icmp"}
        parsed = parse_packet(deparse_packet(pkt))
        assert parsed.signature() == pkt.signature()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**128 - 1), st.integers(0, 255))
    def test_ipv6_roundtrip_property(self, dst, hop_limit):
        pkt = make_ipv6_packet(dst_addr=dst, hop_limit=hop_limit)
        parsed = parse_packet(deparse_packet(pkt))
        assert parsed.signature() == pkt.signature()
