"""Unit tests for the SMT term language and concrete evaluator."""

import pytest

from repro.smt import terms as T


class TestConstruction:
    def test_hash_consing_returns_identical_objects(self):
        a = T.bv_var("x", 8) + T.bv_const(1, 8)
        b = T.bv_var("x", 8) + T.bv_const(1, 8)
        assert a is b

    def test_const_truncates_to_width(self):
        assert T.bv_const(256, 8).value == 0
        assert T.bv_const(257, 8).value == 1
        assert T.bv_const(-1, 8).value == 255

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            T.bv_const(0, 0)
        with pytest.raises(ValueError):
            T.BVSort(-3)

    def test_width_mismatch_rejected(self):
        with pytest.raises(TypeError):
            T.bv_var("x", 8) + T.bv_var("y", 16)
        with pytest.raises(TypeError):
            T.bv_var("x", 8).eq(T.bv_var("y", 4))

    def test_bool_bv_mix_rejected(self):
        with pytest.raises(TypeError):
            T.and_(T.bv_var("x", 8), T.TRUE)
        with pytest.raises(TypeError):
            T.ite(T.bool_var("c"), T.bv_var("x", 8), T.TRUE)

    def test_int_coercion_in_operators(self):
        x = T.bv_var("x", 8)
        t = x + 3
        assert t.args[1].value == 3
        assert t.args[1].width == 8

    def test_value_and_name_accessors(self):
        x = T.bv_var("x", 8)
        assert x.name == "x"
        with pytest.raises(TypeError):
            _ = x.value
        c = T.bv_const(5, 8)
        assert c.value == 5
        with pytest.raises(TypeError):
            _ = c.name

    def test_terms_are_immutable(self):
        x = T.bv_var("x", 8)
        with pytest.raises(AttributeError):
            x.op = "const"


class TestConstantFolding:
    def test_and_or_short_circuit(self):
        p = T.bool_var("p")
        assert T.and_(p, T.FALSE) is T.FALSE
        assert T.and_(p, T.TRUE) is p
        assert T.or_(p, T.TRUE) is T.TRUE
        assert T.or_(p, T.FALSE) is p

    def test_and_flattens_and_dedups(self):
        p, q = T.bool_var("p"), T.bool_var("q")
        t = T.and_(T.and_(p, q), p)
        assert t.op == T.OP_AND
        assert t.args == (p, q)

    def test_double_negation(self):
        p = T.bool_var("p")
        assert T.not_(T.not_(p)) is p

    def test_eq_on_identical_terms(self):
        x = T.bv_var("x", 8)
        assert T.eq(x, x) is T.TRUE

    def test_ite_constant_condition(self):
        x, y = T.bv_var("x", 8), T.bv_var("y", 8)
        assert T.ite(T.TRUE, x, y) is x
        assert T.ite(T.FALSE, x, y) is y
        assert T.ite(T.bool_var("c"), x, x) is x

    def test_concat_and_extract_of_constants(self):
        t = T.concat(T.bv_const(0xAB, 8), T.bv_const(0xCD, 8))
        assert t.value == 0xABCD
        assert t.width == 16
        assert T.extract(t, 15, 8).value == 0xAB
        assert T.extract(t, 7, 0).value == 0xCD

    def test_extract_full_range_is_identity(self):
        x = T.bv_var("x", 8)
        assert T.extract(x, 7, 0) is x

    def test_extract_bounds_checked(self):
        x = T.bv_var("x", 8)
        with pytest.raises(ValueError):
            T.extract(x, 8, 0)
        with pytest.raises(ValueError):
            T.extract(x, 3, 5)

    def test_sext_of_negative_constant(self):
        assert T.sext(T.bv_const(0x80, 8), 8).value == 0xFF80
        assert T.sext(T.bv_const(0x7F, 8), 8).value == 0x007F

    def test_shifts_of_constants(self):
        assert T.shl(T.bv_const(1, 8), 3).value == 8
        assert T.lshr(T.bv_const(0x80, 8), 7).value == 1
        assert T.shl(T.bv_const(0xFF, 8), 4).value == 0xF0


class TestEvaluate:
    def test_arith(self):
        x, y = T.bv_var("x", 8), T.bv_var("y", 8)
        env = {"x": 200, "y": 100}
        assert T.evaluate(x + y, env) == 44  # wraps mod 256
        assert T.evaluate(x - y, env) == 100
        assert T.evaluate(y - x, env) == 156
        assert T.evaluate(x * y, env) == (200 * 100) % 256

    def test_comparisons(self):
        x, y = T.bv_var("x", 8), T.bv_var("y", 8)
        env = {"x": 0x80, "y": 0x7F}  # signed: -128 vs 127
        assert T.evaluate(x.ult(y), env) == 0
        assert T.evaluate(x.slt(y), env) == 1
        assert T.evaluate(x.sle(y), env) == 1
        assert T.evaluate(y.ule(x), env) == 1

    def test_bool_ops(self):
        p, q = T.bool_var("p"), T.bool_var("q")
        env = {"p": 1, "q": 0}
        assert T.evaluate(T.and_(p, q), env) == 0
        assert T.evaluate(T.or_(p, q), env) == 1
        assert T.evaluate(T.xor(p, q), env) == 1
        assert T.evaluate(T.implies(p, q), env) == 0
        assert T.evaluate(T.implies(q, p), env) == 1

    def test_missing_vars_default_to_zero(self):
        x = T.bv_var("x", 8)
        assert T.evaluate(x + 1, {}) == 1

    def test_structure_ops(self):
        x = T.bv_var("x", 16)
        env = {"x": 0xABCD}
        assert T.evaluate(T.extract(x, 15, 8), env) == 0xAB
        assert T.evaluate(T.zext(x, 8), env) == 0xABCD
        assert T.evaluate(T.sext(x, 8), env) == 0xFFABCD
        assert T.evaluate(T.concat(x, x), env) == 0xABCDABCD

    def test_free_variables(self):
        x, y = T.bv_var("x", 8), T.bool_var("p")
        t = T.and_(x.eq(3), y)
        fv = T.free_variables(t)
        assert set(fv) == {"x", "p"}
        assert fv["x"] == T.BVSort(8)
        assert fv["p"] == T.BoolSort()
