"""Tests for parallel packet generation and generation-effort accounting."""

import pytest

from repro.bmv2.entries import decode_table_entry
from repro.bmv2.packet import deparse_packet
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.switchv.harness import DataPlaneStats
from repro.switchv.report import render_generation_stats
from repro.symbolic import PacketGenerator, generate_parallel
from repro.symbolic import parallel
from repro.symbolic.coverage import CoverageMode
from repro.workloads import production_like_entries


def _tor_state(p4info, total=30, seed=2):
    entries = production_like_entries(p4info, total=total, seed=seed)
    state = {}
    for entry in entries:
        decoded = decode_table_entry(p4info, entry)
        state.setdefault(decoded.table_name, []).append(decoded)
    return state


@pytest.fixture(scope="module")
def tor_state():
    return _tor_state(build_p4info(build_tor_program()))


def _packet_bytes(result):
    """The run's full observable output, byte-comparable."""
    return [
        (p.goal, p.profile, p.ingress_port, deparse_packet(p.packet))
        for p in result.packets
    ]


class TestParallelGeneration:
    def test_workers_two_covers_same_goals_as_sequential(self, tor_program, tor_state):
        seq = PacketGenerator(tor_program, tor_state).generate(CoverageMode.ENTRY)
        par = PacketGenerator(tor_program, tor_state).generate(
            CoverageMode.ENTRY, workers=2
        )
        assert {p.goal for p in par.packets} == {p.goal for p in seq.packets}
        assert par.uncovered == seq.uncovered
        assert par.stats.workers == 2
        assert par.stats.goals_total == seq.stats.goals_total

    def test_workers_one_is_byte_identical_to_sequential(self, tor_program, tor_state):
        seq = PacketGenerator(tor_program, tor_state).generate(CoverageMode.ENTRY)
        via_flag = PacketGenerator(tor_program, tor_state).generate(
            CoverageMode.ENTRY, workers=1
        )
        assert _packet_bytes(via_flag) == _packet_bytes(seq)
        assert via_flag.uncovered == seq.uncovered
        assert via_flag.stats.solver_queries == seq.stats.solver_queries

    def test_worker_crash_degrades_to_sequential(self, tor_program, tor_state, monkeypatch):
        """A dead worker loses its shard, not the run: the parent re-solves
        every unfinished goal in-process."""
        seq = PacketGenerator(tor_program, tor_state).generate(CoverageMode.ENTRY)
        monkeypatch.setattr(parallel, "_FAULT_INJECT", True)
        par = PacketGenerator(tor_program, tor_state).generate(
            CoverageMode.ENTRY, workers=2
        )
        assert {p.goal for p in par.packets} == {p.goal for p in seq.packets}
        assert par.uncovered == seq.uncovered

    def test_generate_parallel_direct_entry_point(self, tor_program, tor_state):
        seq = PacketGenerator(tor_program, tor_state).generate(CoverageMode.ENTRY)
        par = generate_parallel(
            PacketGenerator(tor_program, tor_state), CoverageMode.ENTRY, workers=2
        )
        assert {p.goal for p in par.packets} == {p.goal for p in seq.packets}


class TestEffortStats:
    def test_solver_effort_is_surfaced(self, tor_program, tor_state):
        result = PacketGenerator(tor_program, tor_state).generate(CoverageMode.ENTRY)
        stats = result.stats
        assert stats.solver_queries > 0
        assert stats.sat_decisions > 0
        assert stats.sat_propagations > 0
        # Conflicts are workload-dependent but this cascade always has some.
        assert stats.sat_conflicts > 0

    def test_parallel_effort_is_merged(self, tor_program, tor_state):
        par = PacketGenerator(tor_program, tor_state).generate(
            CoverageMode.ENTRY, workers=2
        )
        assert par.stats.solver_queries > 0
        assert par.stats.sat_propagations > 0

    def test_render_generation_stats(self):
        stats = DataPlaneStats(
            goals_total=10,
            goals_covered=8,
            goals_from_cache=3,
            generation_seconds=1.5,
            solver_queries=42,
            sat_conflicts=7,
            sat_decisions=100,
            sat_propagations=5000,
            workers=4,
        )
        text = render_generation_stats(stats)
        assert "8/10 covered" in text
        assert "3 from cache" in text
        assert "42 queries" in text
        assert "4 worker(s)" in text


class TestHarnessWiring:
    def test_harness_workers_knob(self, toy_program, toy_p4info):
        from repro.switch import ReferenceSwitch
        from repro.switchv import SwitchVHarness
        from repro.workloads import EntryBuilder

        b = EntryBuilder(toy_p4info)
        entries = [
            b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
            b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
            b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8,
                  "set_nexthop_id", {"nexthop_id": 3}),
        ]
        switch = ReferenceSwitch(toy_program)
        harness = SwitchVHarness(toy_program, switch, workers=2)
        report = harness.validate_data_plane(entries, exercise_update_path=False)
        assert report.ok, report.incidents.summary_lines()
        assert report.data_plane.workers == 2
        assert report.data_plane.solver_queries > 0


class TestSubsumptionReporting:
    def test_render_counts_subsumed_goals(self):
        stats = DataPlaneStats(
            goals_total=10,
            goals_covered=9,
            goals_from_cache=3,
            goals_subsumed=2,
            generation_seconds=0.5,
            workers=1,
        )
        text = render_generation_stats(stats)
        assert "2 subsumed" in text

    def test_parallel_and_sequential_agree_with_subsumption(
        self, tor_program, tor_state
    ):
        seq = PacketGenerator(tor_program, tor_state).generate(CoverageMode.ENTRY)
        par = PacketGenerator(tor_program, tor_state).generate(
            CoverageMode.ENTRY, workers=2
        )
        assert {p.goal for p in par.packets} == {p.goal for p in seq.packets}
        # Both paths subsume (shard-locally for workers); neither loses goals.
        assert par.stats.goals_covered == seq.stats.goals_covered
