"""Tests for the P4 model IR and the role instantiations."""

import pytest

from repro.p4 import ast
from repro.p4.ast import (
    Cmp,
    Const,
    FieldRef,
    If,
    IsValid,
    MatchKind,
    Seq,
    TableApply,
    assign,
    mark_to_drop,
    punt_to_cpu,
    seq,
)


class TestFieldWidths:
    def test_header_field_width(self, tor_program):
        assert tor_program.field_width("ipv4.dst_addr") == 32
        assert tor_program.field_width("ipv6.dst_addr") == 128
        assert tor_program.field_width("ethernet.dst_addr") == 48
        assert tor_program.field_width("ipv4.ttl") == 8

    def test_metadata_width(self, tor_program):
        assert tor_program.field_width("meta.vrf_id") == 16
        assert tor_program.field_width("meta.l3_admit") == 1

    def test_standard_width(self, tor_program):
        assert tor_program.field_width("standard.drop") == 1
        assert tor_program.field_width("standard.egress_port") == 16

    def test_unknown_field_raises(self, tor_program):
        with pytest.raises(KeyError):
            tor_program.field_width("ipv4.nope")
        with pytest.raises(KeyError):
            tor_program.field_width("meta.nope")
        with pytest.raises(KeyError):
            tor_program.field_width("nothdr.x")


class TestTableLookup:
    def test_tables_in_pipeline_order(self, toy_program):
        names = [t.name for t in toy_program.tables()]
        assert names == ["pre_ingress_tbl", "vrf_tbl", "ipv4_tbl"]

    def test_programmable_excludes_logical(self, tor_program):
        names = {t.name for t in tor_program.programmable_tables()}
        assert "mirror_port_to_clone_session_tbl" not in names
        all_names = {t.name for t in tor_program.tables()}
        assert "mirror_port_to_clone_session_tbl" in all_names

    def test_table_by_name(self, tor_program):
        table = tor_program.table("ipv4_tbl")
        assert table.key("vrf_id").refers_to == ("vrf_tbl", "vrf_id")
        with pytest.raises(KeyError):
            tor_program.table("nope")

    def test_table_key_and_action_accessors(self, tor_program):
        table = tor_program.table("ipv4_tbl")
        assert table.key("ipv4_dst").kind is MatchKind.LPM
        assert table.action("drop").name == "drop"
        with pytest.raises(KeyError):
            table.key("nope")
        with pytest.raises(KeyError):
            table.action("nope")

    def test_requires_priority(self, tor_program):
        assert tor_program.table("acl_ingress_tbl").requires_priority
        assert tor_program.table("l3_admit_tbl").requires_priority  # ternary key
        assert not tor_program.table("ipv4_tbl").requires_priority
        assert not tor_program.table("vrf_tbl").requires_priority

    def test_actions_deduplicated(self, tor_program):
        actions = tor_program.actions()
        names = [a.name for a in actions]
        assert len(names) == len(set(names))
        assert "drop" in names

    def test_conditionals_have_labels(self, tor_program):
        labels = [c.label for c in tor_program.conditionals()]
        assert "ttl_trap" in labels
        assert "broadcast_drop" in labels
        assert "not_dropped_gate" in labels
        assert "l3_admit_gate" in labels


class TestRolePrograms:
    def test_roles(self, tor_program, wan_program, cerberus_program):
        assert tor_program.role == "ToR"
        assert wan_program.role == "WAN"
        assert cerberus_program.role == "Cerberus"

    def test_tor_and_wan_share_common_structure(self, tor_program, wan_program):
        tor_tables = {t.name for t in tor_program.tables()}
        wan_tables = {t.name for t in wan_program.tables()}
        common = {
            "vrf_tbl",
            "ipv4_tbl",
            "ipv6_tbl",
            "nexthop_tbl",
            "wcmp_group_tbl",
            "router_interface_tbl",
            "neighbor_tbl",
        }
        assert common <= tor_tables
        assert common <= wan_tables

    def test_role_specific_acls_differ(self, tor_program, wan_program):
        tor_acl = tor_program.table("acl_ingress_tbl")
        wan_acl = wan_program.table("acl_ingress_tbl")
        tor_keys = {k.key_name for k in tor_acl.keys}
        wan_keys = {k.key_name for k in wan_acl.keys}
        assert "icmp_type" in tor_keys and "icmp_type" not in wan_keys
        assert "dscp" in wan_keys and "dscp" not in tor_keys

    def test_wan_has_egress_acl(self, wan_program, tor_program):
        assert any(t.name == "acl_egress_tbl" for t in wan_program.tables())
        assert not any(t.name == "acl_egress_tbl" for t in tor_program.tables())

    def test_cerberus_has_tunnel_tables(self, cerberus_program):
        names = {t.name for t in cerberus_program.tables()}
        assert {"tunnel_tbl", "decap_tbl"} <= names

    def test_entry_restrictions_parse(self, tor_program, wan_program, cerberus_program):
        from repro.p4.constraints import parse_constraint

        for program in (tor_program, wan_program, cerberus_program):
            for table in program.tables():
                if table.entry_restriction:
                    parse_constraint(table.entry_restriction)

    def test_vrf_table_is_resource_table(self, tor_program):
        assert tor_program.table("vrf_tbl").is_resource_table

    def test_wcmp_table_has_selector(self, tor_program):
        table = tor_program.table("wcmp_group_tbl")
        assert table.implementation is not None
        assert table.implementation.max_group_size == 128


class TestStatementHelpers:
    def test_primitives_desugar_to_assignments(self):
        assert mark_to_drop().dest.path == "standard.drop"
        assert punt_to_cpu().dest.path == "standard.punt"
        stmt = assign("meta.vrf_id", Const(3, 16))
        assert stmt.dest == FieldRef("meta.vrf_id")
        assert stmt.value == Const(3, 16)

    def test_seq_iterates_in_order(self):
        block = seq(mark_to_drop(), punt_to_cpu())
        assert [s.dest.path for s in block] == ["standard.drop", "standard.punt"]

    def test_bool_combinators(self):
        c1 = Cmp("==", FieldRef("a.b"), Const(1, 8))
        combined = ast.and_(c1, ast.not_(IsValid("ipv4")))
        assert combined.op == "and"
        assert combined.args[1].op == "not"
