"""Tests for p4-symbolic: executor, coverage, packet soundness, cache."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmv2.entries import decode_table_entry
from repro.bmv2.interpreter import Interpreter
from repro.bmv2.simulator import Bmv2Simulator
from repro.p4rt import codec
from repro.smt import Result, Solver
from repro.smt import terms as T
from repro.symbolic import PacketGenerator, SymbolicExecutor
from repro.symbolic.cache import PacketCache, cache_key
from repro.symbolic.coverage import CoverageMode, entry_goal, trace_goal
from repro.symbolic.profiles import profiles_for_pattern
from repro.workloads import EntryBuilder, baseline_entries

E = codec.encode


def decode_state(p4info, entries):
    state = {}
    for entry in entries:
        decoded = decode_table_entry(p4info, entry)
        state.setdefault(decoded.table_name, []).append(decoded)
    return state


@pytest.fixture
def toy_state(toy_p4info):
    b = EntryBuilder(toy_p4info)
    entries = [
        b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
        b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8, "set_nexthop_id", {"nexthop_id": 3}),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 16, "set_nexthop_id", {"nexthop_id": 7}),
    ]
    return decode_state(toy_p4info, entries)


class TestProfiles:
    def test_profile_enumeration_matches_parser(self):
        profiles = profiles_for_pattern("ethernet_ipv4_ipv6")
        names = {p.name for p in profiles}
        assert names == {
            "eth",
            "eth_ipv4", "eth_ipv4_icmp", "eth_ipv4_tcp", "eth_ipv4_udp",
            "eth_ipv6", "eth_ipv6_icmp", "eth_ipv6_tcp", "eth_ipv6_udp",
        }

    def test_pins_and_exclusions(self):
        profiles = {p.name: p for p in profiles_for_pattern("ethernet_ipv4_ipv6")}
        assert profiles["eth_ipv4"].pin_map() == {"ethernet.ether_type": 0x0800}
        assert profiles["eth_ipv4_udp"].pin_map()["ipv4.protocol"] == 17
        eth = profiles["eth"]
        assert eth.exclusions[0][1] == (0x0800, 0x86DD)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            profiles_for_pattern("nope")


class TestExecutor:
    def test_trace_has_entry_keys_per_profile(self, toy_program, toy_state):
        executions = SymbolicExecutor(toy_program, toy_state).execute()
        ipv4_profiles = [e for e in executions if "ipv4" in e.profile.valid_headers]
        for execution in ipv4_profiles:
            entry_keys = [k for k in execution.trace if k[0] == "entry" and k[1] == "ipv4_tbl"]
            assert len(entry_keys) == 2

    def test_lpm_priority_negation(self, toy_program, toy_state, toy_p4info):
        """A packet witnessing the /8 entry must not match the /16 one."""
        executions = SymbolicExecutor(toy_program, toy_state).execute()
        execution = next(e for e in executions if e.profile.name == "eth_ipv4_udp")
        shorter = next(
            term
            for key, term in execution.trace.items()
            if key[0] == "entry" and key[1] == "ipv4_tbl"
            and any("/8" not in "" and m[4] == 8 for m in key[2][1])  # prefix_len 8
        )
        solver = Solver()
        for c in execution.constraints:
            solver.add(c)
        assert solver.check(shorter) is Result.SAT
        model = solver.model()
        dst = model.get("eth_ipv4_udp::ipv4.dst_addr", 0)
        assert (dst >> 24) == 0x0A
        assert (dst >> 16) & 0xFF != 0  # excluded from 10.0/16

    def test_branch_trace_records_both_directions(self, toy_program, toy_state):
        executions = SymbolicExecutor(toy_program, toy_state).execute()
        execution = next(e for e in executions if e.profile.name == "eth_ipv4_udp")
        assert ("branch", "ipv4_gate", True) in execution.trace
        assert ("branch", "ipv4_gate", False) in execution.trace

    def test_isvalid_is_concrete_per_profile(self, toy_program, toy_state):
        executions = SymbolicExecutor(toy_program, toy_state).execute()
        eth_only = next(e for e in executions if e.profile.name == "eth")
        # In the eth-only profile the ipv4 gate can never be taken.
        taken = eth_only.trace[("branch", "ipv4_gate", True)]
        assert taken is T.FALSE

    def test_outputs_map_every_field(self, toy_program, toy_state):
        executions = SymbolicExecutor(toy_program, toy_state).execute()
        for execution in executions:
            for path in toy_program.all_field_paths():
                assert path in execution.outputs

    def test_ingress_port_constrained_to_valid_ports(self, toy_program, toy_state):
        executor = SymbolicExecutor(toy_program, toy_state, valid_ports=(3, 4))
        execution = executor.execute()[0]
        solver = Solver()
        for c in execution.constraints:
            solver.add(c)
        port = execution.inputs["standard.ingress_port"]
        assert solver.check(port.eq(3)) is Result.SAT
        assert solver.check(port.eq(5)) is Result.UNSAT


class TestPacketGeneration:
    def test_entry_coverage_for_toy_state(self, toy_program, toy_state):
        result = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        covered_goals = {p.goal for p in result.packets}
        # All four installed entries are reachable.
        entry_goals = [g for g in covered_goals if g.startswith("entry:")]
        assert len(entry_goals) == 4

    def test_branch_coverage_includes_gates(self, toy_program, toy_state):
        result = PacketGenerator(toy_program, toy_state).generate(CoverageMode.BRANCH)
        assert any(p.goal.startswith("branch:ipv4_gate") for p in result.packets)

    def test_unreachable_goals_reported(self, toy_program, toy_state):
        result = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        # The wildcard pre-ingress entry always matches: its miss is UNSAT.
        assert "miss:pre_ingress_tbl" in result.uncovered

    def test_generated_packets_hit_their_goal_entries(self, toy_program, toy_state):
        """Soundness (§5): interpreting the generated packet concretely
        executes the targeted construct."""
        result = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        interp = Interpreter(toy_program, toy_state)
        for generated in result.packets:
            if not generated.goal.startswith("entry:"):
                continue
            table = generated.goal.split(":")[1]
            run = interp.run(generated.packet, generated.ingress_port)
            hit_tables = [t for t, e, _a in run.trace.table_hits if e is not None]
            assert table in hit_tables, generated

    def test_custom_trace_goal(self, toy_program, toy_state, toy_p4info):
        state = toy_state
        entries = state["ipv4_tbl"]
        goal = trace_goal(
            "both-route-and-vrf",
            [
                ("entry", "ipv4_tbl", entries[0].identity()),
                ("entry", "vrf_tbl", state["vrf_tbl"][0].identity()),
            ],
        )
        result = PacketGenerator(toy_program, state).generate(
            CoverageMode.CUSTOM, custom_goals=[goal]
        )
        assert len(result.packets) == 1

    def test_port_diversity(self, tor_program, tor_p4info):
        from repro.workloads import production_like_entries

        entries = production_like_entries(tor_p4info, total=60, seed=2)
        state = decode_state(tor_p4info, entries)
        result = PacketGenerator(tor_program, state).generate(CoverageMode.ENTRY)
        ports = {p.ingress_port for p in result.packets}
        # The canonical forwarding context concentrates on the first port;
        # port-qualified guards (the per-port VRF assignments) force others.
        assert len(ports) >= 2

    def test_background_fill_is_realistic(self, toy_program, toy_state):
        result = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        ipv4_packets = [p for p in result.packets if "ipv4" in p.packet.valid_headers]
        assert ipv4_packets
        for generated in ipv4_packets:
            # TTL was left unconstrained for vrf/pre-ingress goals; the
            # background value keeps packets realistic (no zero-TTL noise).
            assert generated.packet.get("ipv4.ttl") >= 1

    def test_soundness_on_baseline_pipeline(self, tor_program, tor_p4info, tor_baseline):
        state = decode_state(tor_p4info, tor_baseline)
        result = PacketGenerator(tor_program, state).generate(CoverageMode.ENTRY)
        assert result.stats.goals_covered >= 10
        interp = Interpreter(tor_program, state)
        sound = 0
        for generated in result.packets:
            if not generated.goal.startswith("entry:"):
                continue
            table = generated.goal.split(":")[1]
            run = interp.run(generated.packet, generated.ingress_port)
            hit = [t for t, e, _a in run.trace.table_hits if e is not None]
            assert table in hit, generated.goal
            sound += 1
        assert sound >= 10

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 1_000))
    def test_soundness_on_random_states(self, seed):
        """Property: for random workloads, every generated packet's goal
        entry is concretely hit."""
        from repro.p4.p4info import build_p4info
        from repro.p4.programs import build_tor_program
        from repro.workloads import production_like_entries

        program = build_tor_program()
        p4info = build_p4info(program)
        entries = production_like_entries(p4info, total=40, seed=seed)
        state = decode_state(p4info, entries)
        result = PacketGenerator(program, state).generate(CoverageMode.ENTRY)
        interp = Interpreter(program, state)
        for generated in result.packets[:20]:
            if not generated.goal.startswith("entry:"):
                continue
            table = generated.goal.split(":")[1]
            run = interp.run(generated.packet, generated.ingress_port)
            hit = [t for t, e, _a in run.trace.table_hits if e is not None]
            assert table in hit


class TestCache:
    def test_cache_roundtrip(self, toy_program, toy_state):
        cache = PacketCache()
        key = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1, 2))
        assert cache.lookup(key) is None
        result = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        cache.store(key, result)
        hit = cache.lookup(key)
        assert hit is not None
        assert hit.stats.cache_hit
        assert len(hit.packets) == len(result.packets)

    def test_key_sensitive_to_entries(self, toy_program, toy_state):
        smaller = {k: v[:-1] if k == "ipv4_tbl" else v for k, v in toy_state.items()}
        a = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1,))
        b = cache_key(toy_program, smaller, CoverageMode.ENTRY, (1,))
        assert a != b

    def test_key_sensitive_to_program_and_mode(self, toy_program, tor_program, toy_state):
        a = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1,))
        b = cache_key(toy_program, toy_state, CoverageMode.BRANCH, (1,))
        c = cache_key(tor_program, {}, CoverageMode.ENTRY, (1,))
        assert len({a, b, c}) == 3

    def test_key_insensitive_to_entry_order(self, toy_program, toy_state):
        reordered = {k: list(reversed(v)) for k, v in toy_state.items()}
        a = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1,))
        b = cache_key(toy_program, reordered, CoverageMode.ENTRY, (1,))
        assert a == b

    def test_disk_persistence(self, toy_program, toy_state, tmp_path):
        key = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1,))
        result = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        first = PacketCache(directory=tmp_path)
        first.store(key, result)
        second = PacketCache(directory=tmp_path)  # fresh process, warm disk
        hit = second.lookup(key)
        assert hit is not None and hit.stats.cache_hit

    def test_clear(self, toy_program, toy_state, tmp_path):
        cache = PacketCache(directory=tmp_path)
        key = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1,))
        cache.store(key, PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY))
        cache.clear()
        assert cache.lookup(key) is None

    # ------------------------------------------------------------------
    # §6.3 cache-validity contract: the key is a pure function of the
    # things that affect the SMT constraints, and nothing else.
    # ------------------------------------------------------------------
    def test_key_sensitive_to_entry_content(self, toy_program, toy_state, toy_p4info):
        b = EntryBuilder(toy_p4info)
        changed = dict(toy_state)
        changed["ipv4_tbl"] = toy_state["ipv4_tbl"][:-1] + [
            decode_table_entry(
                toy_p4info,
                b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 16,
                      "set_nexthop_id", {"nexthop_id": 9}),  # was 7
            )
        ]
        a = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1,))
        b_key = cache_key(toy_program, changed, CoverageMode.ENTRY, (1,))
        assert a != b_key

    def test_key_sensitive_to_valid_ports(self, toy_program, toy_state):
        a = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1, 2))
        b = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1, 2, 3))
        assert a != b

    def test_corrupt_disk_pickle_is_a_miss_and_removed(self, toy_program, toy_state, tmp_path):
        """A truncated/garbage on-disk pickle must not crash the run: it is
        deleted and treated as a cache miss."""
        key = cache_key(toy_program, toy_state, CoverageMode.ENTRY, (1,))
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(b"\x80\x04 this is not a pickle")
        cache = PacketCache(directory=tmp_path)
        assert cache.lookup(key) is None
        assert not path.exists()
        # The slot is usable again after the bad file is purged.
        result = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        cache.store(key, result)
        assert cache.lookup(key) is not None

    def test_corrupt_goal_pickle_is_a_miss(self, tmp_path):
        cache = PacketCache(directory=tmp_path)
        (tmp_path / "goals" / "deadbeef.pkl").write_bytes(b"garbage")
        assert cache.lookup_goal("deadbeef") is None


class TestPerGoalCache:
    """§6.3 refined: goal-level keys survive edits to unrelated entries."""

    def test_warm_run_answers_without_solving(self, toy_program, toy_state):
        cache = PacketCache()
        cold = PacketGenerator(toy_program, toy_state).generate(
            CoverageMode.ENTRY, goal_cache=cache
        )
        warm = PacketGenerator(toy_program, toy_state).generate(
            CoverageMode.ENTRY, goal_cache=cache
        )
        assert cold.stats.solver_queries > 0
        assert warm.stats.solver_queries == 0
        assert warm.stats.goals_from_cache == warm.stats.goals_total
        assert {p.goal for p in warm.packets} == {p.goal for p in cold.packets}
        assert warm.uncovered == cold.uncovered

    def test_edited_entry_resolves_only_affected_goals(self, toy_program, toy_state):
        """Removing one route re-solves the goals whose formulas mention it
        (same-table priority negations, the table miss) and reuses the rest
        — observable as a solver_queries drop."""
        cache = PacketCache()
        cold = PacketGenerator(toy_program, toy_state).generate(
            CoverageMode.ENTRY, goal_cache=cache
        )
        edited = {
            k: (v[:-1] if k == "ipv4_tbl" else v) for k, v in toy_state.items()
        }
        warm = PacketGenerator(toy_program, edited).generate(
            CoverageMode.ENTRY, goal_cache=cache
        )
        assert 0 < warm.stats.solver_queries < cold.stats.solver_queries
        assert warm.stats.goals_from_cache > 0
        # The untouched pre-ingress/vrf goals came from the cache.
        reused = {p.goal for p in warm.packets} & {p.goal for p in cold.packets}
        assert any(g.startswith("entry:pre_ingress_tbl") for g in reused)

    def test_goal_cache_persists_on_disk(self, toy_program, toy_state, tmp_path):
        cold_cache = PacketCache(directory=tmp_path)
        PacketGenerator(toy_program, toy_state).generate(
            CoverageMode.ENTRY, goal_cache=cold_cache
        )
        fresh = PacketCache(directory=tmp_path)  # warm disk, cold memory
        warm = PacketGenerator(toy_program, toy_state).generate(
            CoverageMode.ENTRY, goal_cache=fresh
        )
        assert warm.stats.solver_queries == 0
        assert warm.stats.goals_from_cache == warm.stats.goals_total


class TestSubsumptionAndMemoization:
    """Coverage subsumption (a goal an earlier packet already witnesses is
    covered by evaluation, not solving) and per-(profile, constrained-set)
    refinement memoization."""

    def test_subsumption_covers_goals_without_solving(self, tor_program, tor_p4info):
        from repro.workloads import production_like_entries

        entries = production_like_entries(tor_p4info, total=60, seed=2)
        state = decode_state(tor_p4info, entries)
        result = PacketGenerator(tor_program, state).generate(CoverageMode.ENTRY)
        assert result.stats.goals_subsumed > 0
        # Subsumed goals count as covered and emit a witness packet.
        assert result.stats.goals_covered == len(result.packets)

    def test_subsumed_witnesses_are_sound(self, tor_program, tor_p4info):
        """A re-used witness must drive the concrete interpreter through
        its goal, exactly like a freshly solved one."""
        from repro.workloads import production_like_entries

        entries = production_like_entries(tor_p4info, total=60, seed=2)
        state = decode_state(tor_p4info, entries)
        result = PacketGenerator(tor_program, state).generate(CoverageMode.ENTRY)
        assert result.stats.goals_subsumed > 0
        interp = Interpreter(tor_program, state)
        for generated in result.packets:
            if not generated.goal.startswith("entry:"):
                continue
            table = generated.goal.split(":")[1]
            run = interp.run(generated.packet, generated.ingress_port)
            hit = [t for t, e, _a in run.trace.table_hits if e is not None]
            assert table in hit, generated.goal

    def test_subsumed_witness_is_an_independent_copy(self, tor_program, tor_p4info):
        """Re-labelled clones must not alias the prior packet: mutating
        one generated packet can't corrupt another's witness."""
        from repro.workloads import production_like_entries

        entries = production_like_entries(tor_p4info, total=60, seed=2)
        state = decode_state(tor_p4info, entries)
        result = PacketGenerator(tor_program, state).generate(CoverageMode.ENTRY)
        seen = set()
        for generated in result.packets:
            assert id(generated.packet) not in seen
            seen.add(id(generated.packet))

    def test_subsumption_skips_partial_assignments(self, toy_program, toy_state):
        """A condition over variables the prior packet never bound must
        not be 'evaluated' with default zeros."""
        generator = PacketGenerator(toy_program, toy_state)
        executions = generator.executions()
        result = generator.generate(CoverageMode.ENTRY)
        # Whatever subsumption concluded, every witness evaluates its
        # goal's condition to true under the packet's own field values —
        # the invariant the partial-assignment guard protects.
        from repro.symbolic.coverage import goals_for_mode

        goals = {g.name: g for g in goals_for_mode(executions, CoverageMode.ENTRY, ())}
        for generated in result.packets:
            goal = goals[generated.goal]
            hit = generator.subsume_goal(goal, executions, [generated])
            assert hit is not None, generated.goal

    def test_refinements_memoized_per_profile_and_constrained_set(
        self, tor_program, tor_p4info
    ):
        from repro.workloads import production_like_entries

        entries = production_like_entries(tor_p4info, total=60, seed=2)
        state = decode_state(tor_p4info, entries)
        generator = PacketGenerator(tor_program, state)
        result = generator.generate(CoverageMode.ENTRY)
        assert result.packets
        # Many goals share a (profile, constrained-variable-set) signature,
        # so the memo stays far smaller than the goal list.
        assert generator._refinement_cache
        assert len(generator._refinement_cache) < result.stats.goals_total

    def test_memoized_refinements_are_stable(self, toy_program, toy_state):
        """Two generators over the same state produce identical packets —
        memoization changes cost, never witnesses."""
        first = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        second = PacketGenerator(toy_program, toy_state).generate(CoverageMode.ENTRY)
        assert [p.packet.fields for p in first.packets] == [
            p.packet.fields for p in second.packets
        ]
