"""Tests for the term simplifier: equivalence-preserving rewrites."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import terms as T
from repro.smt.simplify import simplify


X = T.bv_var("x", 8)
Y = T.bv_var("y", 8)
P = T.bool_var("p")


class TestIdentities:
    def test_and_with_zero(self):
        assert simplify(X & T.bv_const(0, 8)) is T.bv_const(0, 8)

    def test_and_with_ones(self):
        assert simplify(X & T.bv_const(0xFF, 8)) is X

    def test_or_with_zero(self):
        assert simplify(X | T.bv_const(0, 8)) is X

    def test_or_with_ones(self):
        assert simplify(X | T.bv_const(0xFF, 8)) is T.bv_const(0xFF, 8)

    def test_xor_self_cancels(self):
        assert simplify(X ^ X) is T.bv_const(0, 8)

    def test_xor_zero(self):
        assert simplify(X ^ T.bv_const(0, 8)) is X

    def test_add_zero(self):
        assert simplify(X + T.bv_const(0, 8)) is X

    def test_sub_self(self):
        assert simplify(X - X) is T.bv_const(0, 8)

    def test_mul_identities(self):
        assert simplify(X * T.bv_const(1, 8)) is X
        assert simplify(X * T.bv_const(0, 8)) is T.bv_const(0, 8)

    def test_double_bvnot(self):
        assert simplify(~~X) is X

    def test_ult_zero_is_false(self):
        assert simplify(X.ult(T.bv_const(0, 8))) is T.FALSE

    def test_ule_from_zero_is_true(self):
        assert simplify(T.bv_const(0, 8).ule(X)) is T.TRUE

    def test_nested_folding(self):
        # (x & 0) | (5 + 3) -> 8
        t = (X & T.bv_const(0, 8)) | (T.bv_const(5, 8) + T.bv_const(3, 8))
        assert simplify(t).value == 8

    def test_ite_folds_through(self):
        t = T.ite(T.and_(P, T.TRUE), X, X)
        assert simplify(t) is X

    def test_extract_of_zext_inside(self):
        t = T.extract(T.zext(X, 8), 7, 0)
        assert simplify(t) is X

    def test_extract_of_zext_outside(self):
        t = T.extract(T.zext(X, 8), 15, 8)
        assert simplify(t).value == 0


@st.composite
def random_term(draw):
    def bv(depth):
        if depth == 0:
            pick = draw(st.integers(0, 2))
            return (X, Y, T.bv_const(draw(st.integers(0, 255)), 8))[pick]
        op = draw(st.integers(0, 5))
        a, b = bv(depth - 1), bv(depth - 1)
        return (a + b, a - b, a & b, a | b, a ^ b, ~a)[op]

    a = bv(draw(st.integers(1, 3)))
    b = bv(draw(st.integers(1, 3)))
    return draw(st.sampled_from([a.eq(b), a.ult(b), a.ule(b)]))


class TestEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(random_term(), st.integers(0, 255), st.integers(0, 255))
    def test_simplify_preserves_semantics(self, term, x, y):
        env = {"x": x, "y": y}
        assert T.evaluate(simplify(term), env) == T.evaluate(term, env)
