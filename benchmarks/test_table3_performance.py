"""Table 3 — performance of p4-symbolic and p4-fuzzer.

The paper (single vCPU, containerized):

    P4 Prog.  Entries  Generation (w/cache)  Testing
    Inst1     798      413 s (14 s)          58 s
    Inst2     1314     1099 s (6 s)          64 s

    P4 Prog.  Fuzzed Entries  Entries/s
    Inst1     50384           97
    Inst2     48521           96

We measure the same quantities on our substrate (ToR = Inst1, WAN = Inst2).
Absolute numbers differ — the paper drives Z3 and a hardware switch; we
drive a pure-Python QF_BV solver and a software stack — but the shape must
hold: generation dominates testing by an order of magnitude, caching cuts
generation by well over 10×, and fuzzer throughput is roughly constant
across programs.

Run with REPRO_BENCH_SCALE=paper for the full 798/1314-entry workloads.
"""

import time

from conftest import print_table

from repro.bmv2.entries import decode_table_entry
from repro.fuzzer import FuzzerConfig, P4Fuzzer
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program, build_wan_program
from repro.switch import PinsSwitchStack
from repro.switchv import SwitchVHarness
from repro.symbolic.cache import PacketCache
from repro.workloads import production_like_entries

PAPER_SYMBOLIC = {"Inst1": (798, 413, 14, 58), "Inst2": (1314, 1099, 6, 64)}
PAPER_FUZZER = {"Inst1": (50384, 97), "Inst2": (48521, 96)}


def _symbolic_run(build, total_entries):
    """One p4-symbolic cycle: cold generation, cached generation, testing."""
    program = build()
    p4info = build_p4info(program)
    entries = production_like_entries(p4info, total=total_entries, seed=1)
    cache = PacketCache()

    cold_stack = PinsSwitchStack(program)
    harness = SwitchVHarness(program, cold_stack, cache=cache)
    report_cold = harness.validate_data_plane(entries, exercise_update_path=False)
    cold = report_cold.data_plane

    warm_stack = PinsSwitchStack(program)
    harness_warm = SwitchVHarness(program, warm_stack, cache=cache)
    report_warm = harness_warm.validate_data_plane(entries, exercise_update_path=False)
    warm = report_warm.data_plane

    assert report_cold.ok, report_cold.incidents.summary_lines()
    assert report_warm.ok, report_warm.incidents.summary_lines()
    assert warm.cache_hit
    return {
        "entries": len(entries),
        "generation": cold.generation_seconds,
        "generation_cached": warm.generation_seconds,
        "testing": cold.testing_seconds + warm.testing_seconds,
        "packets": cold.packets_tested,
    }


def _fuzzer_run(build, writes, updates_per_write):
    program = build()
    p4info = build_p4info(program)
    stack = PinsSwitchStack(program)
    # At paper scale the installed state reaches tens of thousands of
    # entries; reading all of it back after every write turns the
    # throughput benchmark into a read benchmark.  Thin the oracle's
    # read-back cadence for long runs (statuses are still judged on every
    # update).
    read_back_every = 1 if writes <= 200 else 10
    fuzzer = P4Fuzzer(
        p4info,
        stack,
        FuzzerConfig(
            num_writes=writes,
            updates_per_write=updates_per_write,
            seed=1,
            read_back_every=read_back_every,
        ),
    )
    result = fuzzer.run()
    assert result.incidents.count == 0, result.incidents.summary_lines()
    return {
        "entries": result.updates_sent,
        "per_second": result.updates_per_second,
    }


def test_table3_symbolic_inst1(benchmark, scale):
    stats = benchmark.pedantic(
        _symbolic_run, args=(build_tor_program, scale.inst1_entries), rounds=1, iterations=1
    )
    _report_symbolic("Inst1", stats, scale)


def test_table3_symbolic_inst2(benchmark, scale):
    stats = benchmark.pedantic(
        _symbolic_run, args=(build_wan_program, scale.inst2_entries), rounds=1, iterations=1
    )
    _report_symbolic("Inst2", stats, scale)


def _report_symbolic(name, stats, scale):
    paper_entries, paper_gen, paper_cached, paper_test = PAPER_SYMBOLIC[name]
    print_table(
        f"Table 3 (top, {name}): p4-symbolic [{scale.name} scale]",
        ["P4 Prog.", "Entries", "Generation", "w/ cache", "Testing"],
        [
            (
                name,
                stats["entries"],
                f"{stats['generation']:.0f}s",
                f"{stats['generation_cached']:.2f}s",
                f"{stats['testing']:.1f}s",
            ),
            (f"{name} (paper)", paper_entries, f"{paper_gen}s", f"{paper_cached}s", f"{paper_test}s"),
        ],
    )
    # Shape assertions.
    assert stats["generation"] > stats["testing"], "generation must dominate testing"
    assert stats["generation"] / max(stats["generation_cached"], 1e-9) > 10, (
        "caching must cut generation by far more than 10x"
    )


def test_table3_fuzzer_throughput(benchmark, scale):
    def run_both():
        return {
            "Inst1": _fuzzer_run(build_tor_program, scale.fuzz_writes, scale.fuzz_updates_per_write),
            "Inst2": _fuzzer_run(build_wan_program, scale.fuzz_writes, scale.fuzz_updates_per_write),
        }

    stats = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for name in ("Inst1", "Inst2"):
        paper_entries, paper_rate = PAPER_FUZZER[name]
        rows.append(
            (
                name,
                stats[name]["entries"],
                f"{stats[name]['per_second']:.0f}",
                paper_entries,
                paper_rate,
            )
        )
    print_table(
        f"Table 3 (bottom): p4-fuzzer [{scale.name} scale]",
        ["P4 Prog.", "Fuzzed Entries", "Entries/s", "paper entries", "paper e/s"],
        rows,
    )
    # Shape: throughput roughly constant across programs (within 2x).
    r1 = stats["Inst1"]["per_second"]
    r2 = stats["Inst2"]["per_second"]
    assert 0.5 <= r1 / r2 <= 2.0
