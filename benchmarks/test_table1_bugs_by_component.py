"""Table 1 — bugs found by SwitchV, by component and by tool.

The paper reports 122 PINS and 32 Cerberus bugs split across stack layers
and across p4-fuzzer / p4-symbolic.  We regenerate the table two ways:

1. **Campaign counts** — seed every fault in the concrete catalogue
   (the Appendix-A bugs implemented in :mod:`repro.switch.faults`), run
   SwitchV against each, and attribute detections per component × tool.
   The shape to check: every catalogue fault is detected, the P4Runtime
   server is the richest component, and the fuzzer/symbolic split leans
   symbolic (as in the paper: 37 vs 85).
2. **Published totals** — the paper's exact Table 1 numbers, printed
   alongside for comparison (scaled campaign counts cannot reach 122
   distinct bugs: the catalogue implements the published per-bug sample).
"""

from collections import defaultdict

from conftest import print_table

from repro.switch.faults import faults_for_stack
from repro.switchv.campaign import CampaignConfig, run_fault_campaign
from repro.workloads.bug_catalog import TABLE1_CERBERUS, TABLE1_PINS


def _run_campaign(stack_kind: str, scale):
    config = CampaignConfig(
        fuzz_writes=scale.campaign_fuzz_writes,
        fuzz_updates_per_write=25,
        workload_entries=scale.campaign_entries,
        seed=11,
        run_trivial=False,
    )
    return [
        run_fault_campaign(fault.name, stack_kind, config)
        for fault in faults_for_stack(stack_kind)
    ]


def _aggregate(outcomes):
    per_component = defaultdict(lambda: [0, 0, 0])  # total, fuzzer, symbolic
    for outcome in outcomes:
        if not outcome.detected:
            continue
        row = per_component[outcome.fault.component]
        row[0] += 1
        # Attribute to the tool(s) that flagged it; when both did, credit
        # the tool the paper credits for this bug.
        tool = (
            outcome.detected_by[0]
            if len(outcome.detected_by) == 1
            else outcome.fault.discovered_by
        )
        if tool == "p4-fuzzer":
            row[1] += 1
        else:
            row[2] += 1
    return per_component


def test_table1_pins(benchmark, scale):
    outcomes = benchmark.pedantic(
        _run_campaign, args=("pins", scale), rounds=1, iterations=1
    )
    per_component = _aggregate(outcomes)

    rows = []
    for component, (paper_total, paper_f, paper_s) in TABLE1_PINS.items():
        ours = per_component.get(component, [0, 0, 0])
        rows.append(
            (component, ours[0], ours[1], ours[2], paper_total, paper_f, paper_s)
        )
    ours_total = [sum(v[i] for v in per_component.values()) for i in range(3)]
    rows.append(("Total", *ours_total, 122, 37, 85))
    print_table(
        "Table 1 (PINS): bugs by component",
        ["Component", "bugs", "fuzzer", "symbolic", "paper", "p.fuzz", "p.symb"],
        rows,
    )

    # Shape assertions (not absolute counts; the campaign replays the
    # implemented per-bug catalogue, not all 122 bugs).
    detected = [o for o in outcomes if o.detected]
    assert len(detected) == len(outcomes), [
        o.fault.name for o in outcomes if not o.detected
    ]
    assert per_component["P4Runtime Server"][0] == max(
        v[0] for v in per_component.values()
    )
    assert ours_total[2] > ours_total[1]  # symbolic finds more, as in the paper


def test_table1_cerberus(benchmark, scale):
    outcomes = benchmark.pedantic(
        _run_campaign, args=("cerberus", scale), rounds=1, iterations=1
    )
    per_component = _aggregate(outcomes)
    rows = []
    for component, (paper_total, paper_f, paper_s) in TABLE1_CERBERUS.items():
        ours = per_component.get(component, [0, 0, 0])
        rows.append(
            (component, ours[0], ours[1], ours[2], paper_total, paper_f, paper_s)
        )
    ours_total = [sum(v[i] for v in per_component.values()) for i in range(3)]
    rows.append(("Total", *ours_total, 32, 18, 14))
    print_table(
        "Table 1 (Cerberus): bugs by component",
        ["Component", "bugs", "fuzzer", "symbolic", "paper", "p.fuzz", "p.symb"],
        rows,
    )
    detected = [o for o in outcomes if o.detected]
    assert len(detected) == len(outcomes), [
        o.fault.name for o in outcomes if not o.detected
    ]
    # Switch software dominates the Cerberus table, as in the paper.
    assert per_component["Switch software"][0] >= max(
        v[0] for k, v in per_component.items() if k != "Switch software"
    )
