"""Compiled term evaluation + cross-state solver pooling benchmarks.

Two optimisations sit under packet generation's hot paths:

* **Compiled evaluation** (:mod:`repro.smt.compile`) — goal subsumption and
  model checking evaluate the same hash-consed condition DAGs thousands of
  times under different assignments.  Flattening a DAG once into postorder
  bytecode (one slot per unique node, constants pre-folded) and running a
  tight interpreter loop beats the recursive ``T.evaluate`` tree walk.
* **Cross-state solver pooling** (:mod:`repro.smt.pool`) — a fuzzing
  campaign validates a *sequence* of table states.  A shared
  :class:`SolverPool` keeps the bit-blasted encoding, learned clauses, and
  solved-formula results alive across states, so a single-entry edit only
  re-solves the goals whose solved formulas actually changed — against a
  warm solver.

Both paths are required to be invisible in the results: compiled
evaluation agrees with ``T.evaluate`` everywhere (property-tested in
``tests/test_smt_compile.py``), and warm-pool runs emit byte-identical
packets to cold runs because witnesses are canonicalised, never read off
the solver's history-dependent model (``repro.symbolic.packets``).

The smoke test at the bottom gates CI; the tables are diagnostics.
"""

import time

from conftest import print_table

from repro.bmv2.entries import decode_table_entry
from repro.p4.p4info import build_p4info
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)
from repro.smt import Result, Solver
from repro.smt import terms as T
from repro.smt.compile import compile_term
from repro.smt.pool import SolverPool
from repro.symbolic import PacketGenerator, SymbolicExecutor
from repro.symbolic.coverage import CoverageMode
from repro.workloads import EntryBuilder, baseline_entries, production_like_entries


def _decode_state(p4info, entries):
    state = {}
    for entry in entries:
        decoded = decode_table_entry(p4info, entry)
        state.setdefault(decoded.table_name, []).append(decoded)
    return state


def _tor_fixture(total, seed=1):
    program = build_tor_program()
    p4info = build_p4info(program)
    entries = production_like_entries(p4info, total=total, seed=seed)
    return program, p4info, entries


# ----------------------------------------------------------------------
# Table 1: tree-walk vs compiled evaluation
# ----------------------------------------------------------------------


def test_compiled_vs_tree_walk(scale):
    """Evaluate real subsumption-sized goal conditions both ways.

    The conditions are what ``PacketGenerator.subsume_goal`` and the
    canonical-witness fast path evaluate: per-entry trace terms from the
    symbolically executed ToR pipeline under a production-like state,
    conjoined with the profile's path constraints.  Each is evaluated
    under a *satisfying* assignment (a solver model), the case that
    matters: a subsumption hit / witness acceptance must evaluate the
    whole formula — short-circuiting cannot bail out early — so this is
    where evaluation cost concentrates.
    """
    program, p4info, entries = _tor_fixture(min(scale.inst1_entries, 120))
    state = _decode_state(p4info, entries)
    executions = SymbolicExecutor(program, state).execute()

    # The largest conditions dominate subsumption cost; measure those,
    # in the exact form the hot paths evaluate them: constraints ∧ term.
    conditions = []
    assignments = []
    for execution in executions:
        solver = Solver()
        solver.add(*execution.constraints)
        big = sorted(
            (t for t in execution.trace.values()
             if t is not T.FALSE and t is not T.TRUE),
            key=lambda t: -len(T.free_variables(t)),
        )[:6]
        for term in big:
            if solver.check(term) is not Result.SAT:
                continue
            formula = T.and_(*execution.constraints, term)
            conditions.append(formula)
            assignments.append(dict(solver.model()))

    reps = 30
    compiled = [compile_term(c) for c in conditions]  # warm the cache

    start = time.perf_counter()
    for _ in range(reps):
        tree_results = [
            T.evaluate(c, a) for c, a in zip(conditions, assignments, strict=True)
        ]
    tree_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(reps):
        compiled_results = [
            c.evaluate(a) for c, a in zip(compiled, assignments, strict=True)
        ]
    compiled_seconds = time.perf_counter() - start

    speedup = tree_seconds / max(compiled_seconds, 1e-9)
    slots = sum(c.size for c in compiled)
    print_table(
        f"Compiled evaluation (ToR trace conditions, {scale.name} scale)",
        ["Evaluator", "Conditions", "Slots", "Reps", "Wall clock", "Speedup"],
        [
            ("T.evaluate (tree walk)", len(conditions), "-", reps,
             f"{tree_seconds:.3f}s", "1.00x"),
            ("CompiledTerm bytecode", len(conditions), slots, reps,
             f"{compiled_seconds:.3f}s", f"{speedup:.2f}x"),
        ],
    )

    assert tree_results == compiled_results
    assert speedup >= 3.0, (
        f"compiled evaluation only {speedup:.2f}x over the tree walk "
        f"(tree {tree_seconds:.3f}s, compiled {compiled_seconds:.3f}s)"
    )


# ----------------------------------------------------------------------
# Table 2: cold rebuild vs warm pool across single-entry edits
# ----------------------------------------------------------------------


def test_cold_vs_warm_pool_edit_sequence(scale):
    """Replay a sequence of single-entry edits two ways.

    Cold rebuilds every solver per state (the pre-pool behaviour); warm
    shares one :class:`SolverPool` across the whole sequence.  The edited
    states are where the pool pays off: unchanged solved formulas are
    answered from the memo and only edit-affected goals reach the (warm)
    solver.
    """
    program, p4info, entries = _tor_fixture(60 if scale.name == "small" else 150)
    # State k drops the last k entries: a chain of single-entry edits.
    states = [
        _decode_state(p4info, entries if k == 0 else entries[:-k])
        for k in range(5)
    ]

    def run(state, pool):
        start = time.perf_counter()
        result = PacketGenerator(program, state, solver_pool=pool).generate(
            CoverageMode.ENTRY
        )
        return time.perf_counter() - start, result

    cold = [run(state, None) for state in states]
    pool = SolverPool()
    warm = [run(state, pool) for state in states]

    rows = []
    for k, ((cs, cr), (ws, wr)) in enumerate(zip(cold, warm, strict=True)):
        identical = [(p.goal, p.profile, p.packet, p.ingress_port) for p in cr.packets] == [
            (p.goal, p.profile, p.packet, p.ingress_port) for p in wr.packets
        ] and cr.uncovered == wr.uncovered
        rows.append(
            (f"state {k}" + (" (base)" if k == 0 else f" (-{k} entries)"),
             cr.stats.solver_queries, wr.stats.solver_queries,
             wr.stats.pool_hits, f"{cs:.2f}s", f"{ws:.2f}s",
             f"{cs / max(ws, 1e-9):.2f}x", identical)
        )
        assert identical, f"warm pool diverged from cold rebuild on state {k}"

    cold_total = sum(s for s, _ in cold)
    warm_total = sum(s for s, _ in warm)
    # The speedup claim is about *regeneration*: the edited states after
    # the pool has seen the base state once.
    cold_edits = sum(s for s, _ in cold[1:])
    warm_edits = sum(s for s, _ in warm[1:])
    edit_speedup = cold_edits / max(warm_edits, 1e-9)
    rows.append(
        ("total", sum(r.stats.solver_queries for _, r in cold),
         sum(r.stats.solver_queries for _, r in warm),
         sum(r.stats.pool_hits for _, r in warm),
         f"{cold_total:.2f}s", f"{warm_total:.2f}s",
         f"{cold_total / max(warm_total, 1e-9):.2f}x", True)
    )
    print_table(
        f"Cross-state solver pool (ToR single-entry edits, {scale.name} scale)",
        ["State", "Cold queries", "Warm queries", "Pool hits",
         "Cold", "Warm", "Speedup", "Identical"],
        rows,
    )

    assert edit_speedup >= 2.0, (
        f"warm-pool regeneration only {edit_speedup:.2f}x over cold rebuild "
        f"(cold {cold_edits:.2f}s, warm {warm_edits:.2f}s across 4 edits)"
    )


# ----------------------------------------------------------------------
# CI gate: warm pools never change results, on every shipped model
# ----------------------------------------------------------------------


def _toy_state(p4info):
    b = EntryBuilder(p4info)
    entries = [
        b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
        b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8,
              "set_nexthop_id", {"nexthop_id": 3}),
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 16,
              "set_nexthop_id", {"nexthop_id": 7}),
    ]
    return _decode_state(p4info, entries)


def test_warm_pool_results_identical_smoke():
    """CI smoke (<60 s): on every shipped model, a warm ``SolverPool`` run
    produces a ``GenerationResult`` identical to the cold run — same
    packets (goal, profile, bytes, port), same uncovered set."""
    builders = [
        build_toy_program,
        build_tor_program,
        build_wan_program,
        build_cerberus_program,
    ]
    rows = []
    for build in builders:
        program = build()
        p4info = build_p4info(program)
        state = (
            _toy_state(p4info)
            if program.name == "toy_router"
            else _decode_state(p4info, baseline_entries(p4info))
        )

        cold = PacketGenerator(program, state).generate(CoverageMode.ENTRY)
        pool = SolverPool()
        # First pooled run fills the pool; the second runs fully warm.
        PacketGenerator(program, state, solver_pool=pool).generate(CoverageMode.ENTRY)
        warm = PacketGenerator(program, state, solver_pool=pool).generate(
            CoverageMode.ENTRY
        )

        cold_key = [(p.goal, p.profile, p.packet, p.ingress_port) for p in cold.packets]
        warm_key = [(p.goal, p.profile, p.packet, p.ingress_port) for p in warm.packets]
        assert warm_key == cold_key, f"{program.name}: warm packets diverged"
        assert warm.uncovered == cold.uncovered, f"{program.name}: verdicts diverged"
        rows.append(
            (program.name, cold.stats.goals_total, cold.stats.goals_covered,
             cold.stats.solver_queries, warm.stats.solver_queries,
             warm.stats.pool_hits, "yes")
        )
    print_table(
        "Warm-pool identity smoke (all shipped models)",
        ["Model", "Goals", "Covered", "Cold queries", "Warm queries",
         "Pool hits", "Identical"],
        rows,
    )
