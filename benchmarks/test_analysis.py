"""Static-analysis benchmark: lint wall-time per shipped model.

The lint gate runs before every campaign when ``lint_model=True``, so its
cost must stay negligible next to packet generation (Table 3's dominant
stage).  This benchmark records per-program structural and semantic (SMT)
pass times; the semantic stage dominates because it symbolically walks the
pipeline once per parser profile in two entry-state modes.

Scale-independent: the analyzer's input is the model, not the workload.
"""

from conftest import print_table

from repro.analysis import analyze_program
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)

PROGRAMS = [
    ("toy_router", build_toy_program),
    ("sai_tor", build_tor_program),
    ("sai_wan", build_wan_program),
    ("cerberus", build_cerberus_program),
]


def test_analyzer_wall_time_smoke():
    rows = []
    for name, build in PROGRAMS:
        report = analyze_program(build())
        assert report.semantic_ran
        assert not report.diagnostics, [repr(d) for d in report.diagnostics]
        rows.append(
            (
                name,
                f"{report.structural_seconds * 1e3:.1f}",
                f"{report.semantic_seconds * 1e3:.1f}",
                f"{(report.structural_seconds + report.semantic_seconds) * 1e3:.1f}",
            )
        )
        # The gate must stay cheap: a full lint of any shipped model is
        # well under the cost of a single fuzz batch (seconds).
        assert report.structural_seconds + report.semantic_seconds < 10.0

    print_table(
        "Model lint wall-time (ms)",
        ("program", "structural", "semantic (SMT)", "total"),
        rows,
    )


def test_pooled_solver_warm_vs_cold():
    """The SolverPool port: a warm re-lint (pool already primed by the
    first pass over the same programs) plus the full cross-program
    contract suite must not exceed the cold semantic-only lint time.

    This is the acceptance bar for moving ``_profile_solver`` and
    ``_ReachChecker`` onto assumption-based pooled solvers: keyed solver
    reuse has to pay for the contract layer it enables.
    """
    import time

    from repro.analysis import analyze_contract, reset_analysis_pool

    programs = [(name, build()) for name, build in PROGRAMS]

    reset_analysis_pool()
    cold_start = time.perf_counter()
    for _name, program in programs:
        report = analyze_program(program)
        assert report.semantic_ran
    cold = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    for _name, program in programs:
        analyze_program(program)
    contract = analyze_contract([program for _name, program in programs])
    warm = time.perf_counter() - warm_start
    assert not contract.diagnostics

    print_table(
        "Pooled-solver lint wall-time (s)",
        ("pass", "seconds"),
        [
            ("cold semantic lint (4 programs)", f"{cold:.2f}"),
            ("warm re-lint + contract (6 pairs)", f"{warm:.2f}"),
            ("contract alone", f"{contract.semantic_seconds:.2f}"),
        ],
    )
    # Generous bound: timers under CI load are noisy, but a warm re-lint
    # plus the whole contract suite beating a cold lint outright is the
    # signal that pooled solvers are actually being reused.
    assert warm < cold * 1.5
