"""Static-analysis benchmark: lint wall-time per shipped model.

The lint gate runs before every campaign when ``lint_model=True``, so its
cost must stay negligible next to packet generation (Table 3's dominant
stage).  This benchmark records per-program structural and semantic (SMT)
pass times; the semantic stage dominates because it symbolically walks the
pipeline once per parser profile in two entry-state modes.

Scale-independent: the analyzer's input is the model, not the workload.
"""

from conftest import print_table

from repro.analysis import analyze_program
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)

PROGRAMS = [
    ("toy_router", build_toy_program),
    ("sai_tor", build_tor_program),
    ("sai_wan", build_wan_program),
    ("cerberus", build_cerberus_program),
]


def test_analyzer_wall_time_smoke():
    rows = []
    for name, build in PROGRAMS:
        report = analyze_program(build())
        assert report.semantic_ran
        assert not report.diagnostics, [repr(d) for d in report.diagnostics]
        rows.append(
            (
                name,
                f"{report.structural_seconds * 1e3:.1f}",
                f"{report.semantic_seconds * 1e3:.1f}",
                f"{(report.structural_seconds + report.semantic_seconds) * 1e3:.1f}",
            )
        )
        # The gate must stay cheap: a full lint of any shipped model is
        # well under the cost of a single fuzz batch (seconds).
        assert report.structural_seconds + report.semantic_seconds < 10.0

    print_table(
        "Model lint wall-time (ms)",
        ("program", "structural", "semantic (SMT)", "total"),
        rows,
    )
