"""CNF kernel benchmarks: structural bit-blasting vs the Tseitin baseline.

Packet generation's cost is dominated by the SMT layer, and the SMT
layer's cost is dominated by the CNF it emits.  The structural encoder
(:class:`repro.smt.bitblast.StructuralBitBlaster`) attacks the formula
*before* the solver sees it — constant short-circuiting at the literal
layer, gate-level structural hashing, and polarity-aware
Plaisted–Greenbaum encoding — while the modernized kernel
(:class:`repro.smt.sat.SatSolver`) attacks what remains with blocking
literals, dedicated binary implication lists, on-the-fly learned-clause
minimization, and LBD-based retention.

The table measures both effects on cold entry-coverage generation across
every shipped model: emitted clauses/variables (encoder economy),
propagations/conflicts (kernel effort), and wall clock.  The gate pins
the ISSUE's claims on the ToR model: **≥30% fewer emitted clauses** and
**≥1.5× faster** than the retained ``tseitin``/``legacy`` pipeline.

The identity smoke at the bottom gates CI (select with ``-k
identity_smoke``): both pipelines must produce byte-identical packets and
verdicts on all four models — the legacy paths are the differential
baseline that makes the optimized numbers trustworthy.
"""

import time

from conftest import print_table

from repro.bmv2.entries import decode_table_entry
from repro.p4.p4info import build_p4info
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)
from repro.symbolic import PacketGenerator
from repro.symbolic.coverage import CoverageMode
from repro.workloads import EntryBuilder, baseline_entries

PIPELINES = {
    "optimized": {"encoder": "structural", "kernel": "modern"},
    "legacy": {"encoder": "tseitin", "kernel": "legacy"},
}

BUILDERS = [
    build_toy_program,
    build_tor_program,
    build_wan_program,
    build_cerberus_program,
]


def _decode_state(p4info, entries):
    state = {}
    for entry in entries:
        decoded = decode_table_entry(p4info, entry)
        state.setdefault(decoded.table_name, []).append(decoded)
    return state


def _state_for(program, p4info):
    if program.name == "toy_router":
        b = EntryBuilder(p4info)
        entries = [
            b.ternary("pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1),
            b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"),
            b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 8,
                  "set_nexthop_id", {"nexthop_id": 3}),
            b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x0A000000, 16,
                  "set_nexthop_id", {"nexthop_id": 7}),
        ]
    else:
        entries = baseline_entries(p4info)
    return _decode_state(p4info, entries)


def _cold_run(program, state, pipeline):
    start = time.perf_counter()
    result = PacketGenerator(program, state, **PIPELINES[pipeline]).generate(
        CoverageMode.ENTRY
    )
    return time.perf_counter() - start, result


def _packet_key(result):
    return (
        [(p.goal, p.profile, p.packet, p.ingress_port) for p in result.packets],
        result.uncovered,
    )


# ----------------------------------------------------------------------
# Table: clause economy + solve speed per shipped model
# ----------------------------------------------------------------------


def test_cnf_kernel_clause_economy_and_speed(scale):
    """Cold entry-coverage generation, optimized vs legacy pipeline.

    The ToR row carries the gate; every model must stay verdict-identical.
    ToR timing takes the best of three runs per pipeline so a scheduler
    hiccup cannot fail the 1.5× gate spuriously; clause counts are exact
    and deterministic.
    """
    rows = []
    tor_gate = None
    for build in BUILDERS:
        program = build()
        p4info = build_p4info(program)
        state = _state_for(program, p4info)
        reps = 3 if program.name == "sai_tor" else 1

        runs = {}
        for pipeline in PIPELINES:
            best = None
            for _ in range(reps):
                seconds, result = _cold_run(program, state, pipeline)
                if best is None or seconds < best[0]:
                    best = (seconds, result)
            runs[pipeline] = best

        (opt_s, opt), (leg_s, leg) = runs["optimized"], runs["legacy"]
        assert _packet_key(opt) == _packet_key(leg), (
            f"{program.name}: optimized pipeline diverged from legacy"
        )

        clause_ratio = opt.stats.cnf_clauses / max(leg.stats.cnf_clauses, 1)
        speedup = leg_s / max(opt_s, 1e-9)
        rows.append(
            (program.name, opt.stats.goals_total,
             leg.stats.cnf_clauses, opt.stats.cnf_clauses,
             f"-{(1 - clause_ratio):.0%}",
             leg.stats.sat_propagations, opt.stats.sat_propagations,
             opt.stats.gates_shared,
             f"{leg_s:.2f}s", f"{opt_s:.2f}s", f"{speedup:.2f}x")
        )
        if program.name == "sai_tor":
            tor_gate = (clause_ratio, speedup, leg.stats.cnf_clauses,
                        opt.stats.cnf_clauses, leg_s, opt_s)

    print_table(
        f"CNF kernel: structural+modern vs tseitin+legacy ({scale.name} scale)",
        ["Model", "Goals", "Legacy clauses", "Opt clauses", "Clauses",
         "Legacy props", "Opt props", "Gates shared",
         "Legacy", "Opt", "Speedup"],
        rows,
    )

    clause_ratio, speedup, leg_c, opt_c, leg_s, opt_s = tor_gate
    assert clause_ratio <= 0.70, (
        f"ToR: optimized encoder emitted {opt_c} clauses vs legacy {leg_c} "
        f"({1 - clause_ratio:.0%} reduction; gate requires >=30%)"
    )
    assert speedup >= 1.5, (
        f"ToR: optimized cold generation only {speedup:.2f}x over legacy "
        f"(legacy {leg_s:.2f}s, optimized {opt_s:.2f}s; gate requires 1.5x)"
    )


# ----------------------------------------------------------------------
# CI gate: optimized pipeline verdict-identical on every shipped model
# ----------------------------------------------------------------------


def test_cnf_kernel_identity_smoke():
    """CI smoke (<120 s): the optimized pipeline's packets, verdicts, and
    uncovered goals are byte-identical to the legacy pipeline's on all
    four shipped models."""
    rows = []
    for build in BUILDERS:
        program = build()
        p4info = build_p4info(program)
        state = _state_for(program, p4info)
        _, opt = _cold_run(program, state, "optimized")
        _, leg = _cold_run(program, state, "legacy")
        assert _packet_key(opt) == _packet_key(leg), (
            f"{program.name}: optimized pipeline diverged from legacy"
        )
        rows.append(
            (program.name, opt.stats.goals_total, opt.stats.goals_covered,
             leg.stats.cnf_clauses, opt.stats.cnf_clauses, "yes")
        )
    print_table(
        "CNF kernel identity smoke (all shipped models)",
        ["Model", "Goals", "Covered", "Legacy clauses", "Opt clauses",
         "Identical"],
        rows,
    )
