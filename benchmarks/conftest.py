"""Shared benchmark configuration.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``small`` (default) — minutes-scale run that preserves every qualitative
  shape the paper reports.
* ``paper`` — the evaluation's full sizes (798 / 1314 entry workloads,
  1000×50 fuzz writes); expect ~30–45 minutes on one core, comparable to
  the single-vCPU numbers in Table 3.
"""

import os
from dataclasses import dataclass

import pytest


@dataclass(frozen=True)
class BenchScale:
    name: str
    inst1_entries: int
    inst2_entries: int
    fuzz_writes: int
    fuzz_updates_per_write: int
    campaign_fuzz_writes: int
    campaign_entries: int


SCALES = {
    "small": BenchScale(
        name="small",
        inst1_entries=150,
        inst2_entries=250,
        fuzz_writes=100,
        fuzz_updates_per_write=50,
        campaign_fuzz_writes=15,
        campaign_entries=70,
    ),
    "paper": BenchScale(
        name="paper",
        inst1_entries=798,
        inst2_entries=1314,
        fuzz_writes=1000,
        fuzz_updates_per_write=50,
        campaign_fuzz_writes=25,
        campaign_entries=90,
    ),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return SCALES[os.environ.get("REPRO_BENCH_SCALE", "small")]


def print_table(title: str, headers, rows) -> None:
    """Render a paper-style table to stdout (visible with pytest -s or in
    the benchmark run's captured output)."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths, strict=True))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths, strict=True)))
