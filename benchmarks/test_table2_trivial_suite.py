"""Table 2 — which bugs could be found using the trivial test suite (§6.2).

For every fault in the catalogue, run the six-step trivial suite against a
switch with that fault seeded, attribute the bug to the *first* failing
test (tests run in sequence; later tests don't get credit for bugs an
earlier test already caught), and compare the distribution against the
published Table 2.

Shapes to hold: a large share of bugs (49% in the paper's PINS column) is
invisible to the trivial suite — those are the bugs that justify SwitchV —
and the Cerberus share is higher still (78%), because the vendor's own
testing had already taken the shallow bugs.
"""

from collections import Counter

from conftest import print_table

from repro.p4.p4info import build_p4info
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.switch.faults import faults_for_stack
from repro.switch.model_faults import apply_model_faults
from repro.switchv.campaign import STACK_PROGRAMS
from repro.switchv.trivial import TRIVIAL_TESTS, run_trivial_suite
from repro.workloads.bug_catalog import TABLE2_CERBERUS, TABLE2_PINS


def _run_trivial_over_catalog(stack_kind: str):
    build = STACK_PROGRAMS[stack_kind]
    attribution = Counter()
    per_fault = {}
    for fault in faults_for_stack(stack_kind):
        model = apply_model_faults(build(), [fault.name])
        stack = PinsSwitchStack(build(), faults=FaultRegistry([fault.name]))
        result = run_trivial_suite(model, stack)
        first = result.first_failure or "not_found"
        attribution[first] += 1
        per_fault[fault.name] = first
    return attribution, per_fault


def _rows(attribution: Counter, paper):
    total = sum(attribution.values())
    rows = []
    for test in list(TRIVIAL_TESTS) + ["not_found"]:
        ours = attribution.get(test, 0)
        share = f"{ours / total:.0%}" if total else "0%"
        paper_count, paper_share = paper[test]
        rows.append((test, ours, share, paper_count, f"{paper_share:.0%}"))
    return rows, total


def test_table2_pins(benchmark):
    attribution, per_fault = benchmark.pedantic(
        _run_trivial_over_catalog, args=("pins",), rounds=1, iterations=1
    )
    rows, total = _rows(attribution, TABLE2_PINS)
    print_table(
        "Table 2 (PINS): bugs found by the trivial test suite",
        ["Test", "bugs", "share", "paper", "p.share"],
        rows,
    )
    print("per-fault attribution:", dict(sorted(per_fault.items())))

    not_found = attribution.get("not_found", 0)
    # The paper: 49% of PINS bugs escape the trivial suite. Shape: a large
    # minority-to-majority share escapes; the suite is far from sufficient.
    assert 0.3 <= not_found / total <= 0.8
    # Every test except packet_forwarding catches something in the paper;
    # at catalogue scale we only require that several distinct tests fire.
    firing = [t for t in TRIVIAL_TESTS if attribution.get(t)]
    assert len(firing) >= 3
    assert attribution.get("packet_forwarding", 0) == 0  # matches the paper's 0%


def test_table2_cerberus(benchmark):
    attribution, _per_fault = benchmark.pedantic(
        _run_trivial_over_catalog, args=("cerberus",), rounds=1, iterations=1
    )
    rows, total = _rows(attribution, TABLE2_CERBERUS)
    print_table(
        "Table 2 (Cerberus): bugs found by the trivial test suite",
        ["Test", "bugs", "share", "paper", "p.share"],
        rows,
    )
    not_found = attribution.get("not_found", 0)
    # The paper: 78% of Cerberus bugs escape the trivial suite.
    assert not_found / total >= 0.5
