"""Coverage-guided vs blind fuzzing benchmark (the FP4-style feedback win).

Both arms run the tor model at an *equal update budget* and identical
seeds; the blind arm still meters coverage (``track_coverage=True``) so
the comparison counts the same trace keys the same way, but only the
guided arm feeds them back into table/mutation selection and corpus
replay.  The headline number is distinct model trace keys covered —
tables hit, entries exercised, branch directions witnessed, miss paths,
and @entry_restriction boundary-distance bands.

Scoring adds no solver calls (compiled-term probe evaluation only), so
both arms' wall clock stays CPU-bound and comparable.

The ``smoke`` test is the CI job (seconds); ``REPRO_BENCH_SCALE=paper``
lengthens the campaigns and sweeps more seeds.
"""

import os

from conftest import print_table

from repro.fuzzer import FuzzerConfig, P4Fuzzer
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.switch import PinsSwitchStack
from repro.switchv.metrics import collect_coverage_progress

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
NUM_WRITES = 20 if SCALE == "small" else 40
UPDATES_PER_WRITE = 15
SEEDS = (7, 23, 42) if SCALE == "small" else (7, 11, 23, 42, 57)

_PROGRAM = build_tor_program()
_P4INFO = build_p4info(_PROGRAM)


def _campaign(guided, seed, num_writes=NUM_WRITES):
    config = FuzzerConfig(
        num_writes=num_writes,
        updates_per_write=UPDATES_PER_WRITE,
        seed=seed,
        coverage_guided=guided,
        track_coverage=True,
    )
    fuzzer = P4Fuzzer(_P4INFO, PinsSwitchStack(_PROGRAM), config, model=_PROGRAM)
    result = fuzzer.run()
    return collect_coverage_progress(result), result


def test_coverage_guided_smoke():
    """CI gate: at an equal update budget, guided covers strictly more
    distinct trace keys than blind."""
    seed = SEEDS[0]
    blind, blind_result = _campaign(False, seed)
    guided, guided_result = _campaign(True, seed)
    assert blind_result.updates_sent == guided_result.updates_sent
    print_table(
        f"coverage-guided fuzzing (smoke, tor, seed {seed}, "
        f"{NUM_WRITES}x{UPDATES_PER_WRITE} updates)",
        ["arm", "trace keys", "entries", "branches", "corpus", "score cpu"],
        [
            ["blind", blind.covered, blind.by_kind().get("entry", 0),
             blind.by_kind().get("branch", 0), "-",
             f"{blind.score_seconds:.2f}s"],
            ["guided", guided.covered, guided.by_kind().get("entry", 0),
             guided.by_kind().get("branch", 0), guided.corpus_size,
             f"{guided.score_seconds:.2f}s"],
        ],
    )
    assert guided.covered > blind.covered, (
        f"guided {guided.covered} <= blind {blind.covered} at equal budget"
    )


def test_coverage_guided_table():
    """The full table: blind vs guided across seeds, plus the curve."""
    rows = []
    wins = 0
    for seed in SEEDS:
        blind, _ = _campaign(False, seed)
        guided, _ = _campaign(True, seed)
        delta = guided.covered - blind.covered
        wins += delta > 0
        half = next(
            (keys for updates, keys in guided.samples
             if updates >= NUM_WRITES * UPDATES_PER_WRITE // 2),
            guided.covered,
        )
        rows.append(
            [seed, blind.covered, guided.covered, f"{delta:+d}",
             half, guided.corpus_size,
             f"{guided.batches_skipped}/{guided.batches_scored + guided.batches_skipped}"]
        )
    print_table(
        f"coverage-guided fuzzing ({SCALE}: tor, "
        f"{NUM_WRITES}x{UPDATES_PER_WRITE} updates per arm)",
        ["seed", "blind keys", "guided keys", "delta", "guided@50%",
         "corpus", "skipped batches"],
        rows,
    )
    # The acceptance bar: guided wins on a majority of seeds and never
    # collapses (a tie on one seed is noise, a loss everywhere is a bug).
    assert wins * 2 > len(SEEDS), rows
