"""Ablations over SwitchV's design choices (§4.2, §7, DESIGN.md).

1. **Mutation-based vs naïve-random invalid generation** — the paper's
   core fuzzing argument: naïve random requests are "syntactically invalid
   with a high probability and end up exercising only the first few
   checks".  We measure how deep each strategy's invalid requests reach
   into the validation pipeline.
2. **Mutation-catalogue ablation** — which seeded control-plane bugs each
   mutation class is necessary for.
3. **Constraint-aware generation (§7)** — share of generated ACL entries
   that are constraint compliant with and without the SMT-backed planner.
4. **Coverage-mode cost** — entry vs branch coverage goal counts and
   generation cost (the paper's reason for rejecting trace coverage).
"""

import random
from collections import Counter

from conftest import print_table

from repro.bmv2.entries import EntryDecodeError, decode_table_entry
from repro.fuzzer import FuzzerConfig, P4Fuzzer, RequestGenerator
from repro.fuzzer.mutations import MUST_REJECT, apply_random_mutation
from repro.p4.constraints import parse_constraint
from repro.p4.constraints.evaluator import evaluate_constraint
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.p4rt.messages import FieldMatch, TableEntry, ActionInvocation, Update, UpdateType
from repro.switch import FaultRegistry, PinsSwitchStack
from repro.symbolic import PacketGenerator
from repro.symbolic.coverage import CoverageMode
from repro.workloads import production_like_entries

# Validation depth levels an invalid request can reach before rejection.
DEPTHS = ["table_lookup", "format", "constraint", "state", "accepted_as_valid"]


def _depth_of(p4info, entry: TableEntry) -> str:
    """How deep into the validation pipeline an entry penetrates."""
    if entry.table_id not in p4info.tables:
        return "table_lookup"
    try:
        decoded = decode_table_entry(p4info, entry)
    except EntryDecodeError:
        return "format"
    table = p4info.tables[entry.table_id]
    if table.entry_restriction:
        expr = parse_constraint(table.entry_restriction)
        if not evaluate_constraint(expr, decoded.key_values()):
            return "constraint"
    return "accepted_as_valid"


def _random_entry(rng) -> TableEntry:
    """A naïve uniformly random request (the strawman of §4.2)."""
    matches = tuple(
        FieldMatch(
            rng.randint(1, 4),
            rng.choice(["exact", "lpm", "ternary", "optional"]),
            bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 4))),
            mask=bytes(rng.getrandbits(8) for _ in range(rng.randint(0, 2))),
            prefix_len=rng.randint(0, 40),
        )
        for _ in range(rng.randint(0, 3))
    )
    action = ActionInvocation(
        rng.getrandbits(32),
        tuple((rng.randint(1, 3), bytes([rng.getrandbits(8)])) for _ in range(rng.randint(0, 2))),
    )
    return TableEntry(rng.getrandbits(32), matches, action, priority=rng.randint(0, 5))


def test_ablation_mutation_vs_naive_depth(benchmark):
    """Mutation-based invalid requests reach deeper than naïve random ones."""

    def measure():
        program = build_tor_program()
        p4info = build_p4info(program)
        rng = random.Random(3)
        naive = Counter()
        for _ in range(800):
            naive[_depth_of(p4info, _random_entry(rng))] += 1

        generator = RequestGenerator(p4info, rng)
        mutated = Counter()
        produced = 0
        while produced < 800:
            update = generator.generate_update()
            if update is None or update.type is not UpdateType.INSERT:
                continue
            generator.state.install(update.entry)
            mutant = apply_random_mutation(rng, p4info, update)
            if mutant is None or mutant.expectation != MUST_REJECT:
                continue
            mutated[_depth_of(p4info, mutant.update.entry)] += 1
            produced += 1
        return naive, mutated

    naive, mutated = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (depth, naive.get(depth, 0), mutated.get(depth, 0))
        for depth in DEPTHS
        if naive.get(depth) or mutated.get(depth)
    ]
    print_table(
        "Ablation: validation depth of invalid requests",
        ["Depth reached", "naive random", "mutation-based"],
        rows,
    )
    naive_shallow = naive.get("table_lookup", 0) / sum(naive.values())
    mutated_shallow = mutated.get("table_lookup", 0) / sum(mutated.values())
    # Naïve requests overwhelmingly die at the first check; mutants don't.
    assert naive_shallow > 0.9
    assert mutated_shallow < 0.5


def test_ablation_mutation_classes(benchmark):
    """Removing a mutation class loses the bugs only it can reach."""

    def measure():
        program = build_tor_program()
        p4info = build_p4info(program)
        results = {}
        cases = [
            ("duplicate_entry_wrong_error", ["duplicate_insert"]),
            ("delete_nonexistent_fails_batch", ["delete_nonexistent"]),
        ]
        for fault, needed in cases:
            for mutations in (needed, []):
                stack = PinsSwitchStack(program, faults=FaultRegistry([fault]))
                fuzzer = P4Fuzzer(
                    p4info,
                    stack,
                    FuzzerConfig(
                        num_writes=30, updates_per_write=25, seed=7, mutations=mutations
                    ),
                )
                count = fuzzer.run().incidents.count
                results[(fault, "with" if mutations else "without")] = count
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (fault, variant, count, "detected" if count else "missed")
        for (fault, variant), count in sorted(results.items())
    ]
    print_table(
        "Ablation: mutation classes vs seeded bugs",
        ["Seeded fault", "mutations", "incidents", "outcome"],
        rows,
    )
    # The delete-nonexistent mutation is strictly necessary for its bug
    # (valid fuzzing only deletes entries that exist).
    assert results[("delete_nonexistent_fails_batch", "with")] > 0
    assert results[("delete_nonexistent_fails_batch", "without")] == 0
    # Duplicate inserts also arise organically from valid generation (small
    # exact key spaces), so the mutation is sufficient but not necessary:
    # both configurations must detect the wrong-code bug.
    assert results[("duplicate_entry_wrong_error", "with")] > 0
    assert results[("duplicate_entry_wrong_error", "without")] > 0


def test_ablation_constraint_aware_generation(benchmark):
    """The §7 SMT-backed planner makes ACL generation constraint compliant."""

    def measure():
        program = build_tor_program()
        p4info = build_p4info(program)
        acl = p4info.table_by_name("acl_ingress_tbl")
        expr = parse_constraint(acl.entry_restriction)
        shares = {}
        for aware in (False, True):
            generator = RequestGenerator(
                p4info, random.Random(5), constraint_aware=aware
            )
            compliant = 0
            produced = 0
            while produced < 150:
                update = generator.generate_insert(table_id=acl.id)
                if update is None:
                    continue
                produced += 1
                try:
                    decoded = decode_table_entry(p4info, update.entry)
                except EntryDecodeError:
                    continue
                if evaluate_constraint(expr, decoded.key_values()):
                    compliant += 1
            shares["aware" if aware else "baseline"] = compliant / produced
        return shares

    shares = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: constraint-compliant share of generated ACL entries",
        ["Generator", "compliant share"],
        [(k, f"{v:.0%}") for k, v in shares.items()],
    )
    # The paper: without enforcement, tables with constraints frequently
    # get invalid requests; the §7 extension eliminates that.
    assert shares["baseline"] < 0.9
    assert shares["aware"] == 1.0


def test_ablation_coverage_modes(benchmark, scale):
    """Branch coverage costs more goals/time than entry coverage; this gap
    is why full trace coverage is combinatorially hopeless (§5)."""

    def measure():
        program = build_tor_program()
        p4info = build_p4info(program)
        entries = production_like_entries(p4info, total=min(scale.campaign_entries, 80), seed=2)
        state = {}
        for entry in entries:
            decoded = decode_table_entry(p4info, entry)
            state.setdefault(decoded.table_name, []).append(decoded)
        out = {}
        for mode in (CoverageMode.ENTRY, CoverageMode.BRANCH):
            result = PacketGenerator(program, state).generate(mode)
            out[mode.value] = (
                result.stats.goals_total,
                result.stats.goals_covered,
                result.stats.elapsed_seconds,
            )
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (mode, total, covered, f"{seconds:.1f}s")
        for mode, (total, covered, seconds) in out.items()
    ]
    print_table(
        "Ablation: coverage-mode cost",
        ["Mode", "goals", "covered", "generation"],
        rows,
    )
    assert out["branch"][0] > out["entry"][0]
