"""Pipelined fuzzing-loop throughput benchmark.

Compares the sequential validation loop against the windowed scheduler
(`repro.fuzzer.pipeline`) at depths 2/4/8, on a clean transport and under
the catalogue `delay` fault profile (10% of RPCs draw a bounded latency,
the shape a real switch's management plane exhibits under load).

Throughput is *modeled* updates/second: CPU actually spent plus the
transport wait the schedule would pay against a real switch at the
injected latencies — per-RPC sums for the sequential loop, per-window
makespans for the pipelined one (see
repro.switchv.metrics.PipelineThroughput).  Both terms are deterministic
per seed, so the depth comparison needs no sleeping.

The ``smoke`` test is the CI job (seconds); ``REPRO_BENCH_SCALE=paper``
doubles the campaign length.
"""

import os

from conftest import print_table

from repro.fuzzer import FuzzerConfig, P4Fuzzer
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.p4rt.channel import FaultInjectingChannel, resolve_profile
from repro.p4rt.retry import build_resilient_client
from repro.switch import PinsSwitchStack
from repro.switchv.metrics import collect_pipeline_throughput

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
# Many small waves: the regime where per-RPC latency dominates a
# sequential campaign and windows have batches to coalesce.
NUM_WRITES = 200 if SCALE == "small" else 400
UPDATES_PER_WRITE = 4

_PROGRAM = build_tor_program()
_P4INFO = build_p4info(_PROGRAM)


def _campaign(depth, profile, num_writes=NUM_WRITES, seed=21):
    stack = PinsSwitchStack(_PROGRAM)
    switch = stack
    if profile is not None:
        switch = FaultInjectingChannel(stack, resolve_profile(profile, seed=13))
    client = build_resilient_client(switch)
    config = FuzzerConfig(
        num_writes=num_writes,
        updates_per_write=UPDATES_PER_WRITE,
        seed=seed,
        pipeline_depth=depth,
    )
    result = P4Fuzzer(_P4INFO, client, config).run()
    return collect_pipeline_throughput(result)


def test_pipeline_throughput_smoke():
    """CI gate: depth 4 beats sequential >=1.5x under the delay profile."""
    base = _campaign(1, "delay")
    deep = _campaign(4, "delay")
    speedup = deep.modeled_updates_per_second / base.modeled_updates_per_second
    print_table(
        "pipelined fuzzing throughput (smoke, delay profile)",
        ["depth", "updates/s", "cpu", "transport wait", "speedup"],
        [
            [1, f"{base.modeled_updates_per_second:.0f}",
             f"{base.wall_seconds:.2f}s", f"{base.transport_wait_seconds:.2f}s",
             "1.00x"],
            [4, f"{deep.modeled_updates_per_second:.0f}",
             f"{deep.wall_seconds:.2f}s", f"{deep.transport_wait_seconds:.2f}s",
             f"{speedup:.2f}x"],
        ],
    )
    assert deep.max_in_flight > 1
    assert speedup >= 1.5, f"depth-4 speedup {speedup:.2f}x under delay"


def test_pipeline_throughput_table():
    """The full table: sequential vs depth 2/4/8, clean vs delay."""
    rows = []
    speedups = {}
    for profile in (None, "delay"):
        label = profile or "clean"
        base = None
        for depth in (1, 2, 4, 8):
            t = _campaign(depth, profile)
            if base is None:
                base = t
            speedup = (
                t.modeled_updates_per_second / base.modeled_updates_per_second
            )
            speedups[(label, depth)] = speedup
            rows.append(
                [
                    label,
                    depth,
                    t.updates_sent,
                    f"{t.wall_seconds:.2f}s",
                    f"{t.transport_wait_seconds:.2f}s",
                    t.windows or "-",
                    t.read_backs_coalesced or "-",
                    f"{t.modeled_updates_per_second:.0f}",
                    f"{speedup:.2f}x",
                ]
            )
    print_table(
        f"pipelined fuzzing throughput ({SCALE}: "
        f"{NUM_WRITES}x{UPDATES_PER_WRITE} updates)",
        ["transport", "depth", "updates", "cpu", "wait", "windows",
         "reads saved", "updates/s", "speedup"],
        rows,
    )
    # The acceptance bar: latency-bound campaigns pipeline >=1.5x at depth 4.
    assert speedups[("delay", 4)] >= 1.5, speedups
    # Deeper windows never lose to shallower ones by much more than noise.
    assert speedups[("delay", 8)] >= speedups[("delay", 4)] * 0.8, speedups
