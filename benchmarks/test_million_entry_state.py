"""Production-scale state benchmark: updates/sec and packets/sec vs size.

The paper's workloads top out at 1314 entries; production switches carry
route tables into the hundreds of thousands and sit at capacity.  Before
the incremental-state fixes, the oracle and both switch implementations
recomputed per-table counts, referenceable-value sets, and orphan checks
from the full store on *every* update — O(N) per update, O(N^2) per
campaign — and the interpreter scanned every installed entry per packet.

This is the standing regression gate for those fixes.  Per tier it
measures, on pre-seeded states of 1k / 100k (and 1M with
``REPRO_MILLION=1``) entries:

* indexed switch updates/sec over a CRM-style churn probe (delete +
  re-insert at the capacity boundary);
* indexed oracle judged updates/sec over the same probe;
* indexed packets/sec through the interpreter's table indices;
* the linear baseline's updates/sec over a small probe, for the speedup
  column.

Gates: per-update and per-packet cost must stay near-flat from the 1k tier
to the top tier (bounded growth factor, not O(N)), and the indexed paths
must beat the linear baseline by >=50x at the 100k tier (>=20x at the
small-scale 20k tier).
"""

import os
import time

from conftest import print_table

from repro.bmv2.packet import deparse_packet, make_ipv4_packet
from repro.fuzzer.oracle import Oracle
from repro.p4.programs import build_tor_program
from repro.p4rt.messages import Update, UpdateType, WriteRequest, WriteResponse
from repro.p4rt.status import Status
from repro.switch import ReferenceSwitch
from repro.workloads import crm_fill_updates, production_like_entries
from repro.workloads.scale import production_scale_program

# Growth allowance for "near-flat": per-update / per-packet cost at the top
# tier may be at most this multiple of the 1k-tier cost.  The size ratio is
# 20x-1000x, so anything superlinear blows through this immediately while
# cache effects on giant dicts stay comfortably inside it.
FLATNESS_BOUND = 4.0

CHURN_PROBE = 400  # indexed probe: delete + re-insert pairs
PACKET_PROBE = 150


def _tiers():
    tiers = [1_000]
    if os.environ.get("REPRO_BENCH_SCALE", "small") == "paper":
        tiers.append(100_000)
        min_speedup = 50.0
    else:
        tiers.append(20_000)
        min_speedup = 20.0
    if os.environ.get("REPRO_MILLION"):
        tiers.append(1_000_000)
    return tiers, min_speedup


def _workload(total):
    program = build_tor_program()
    scaled, p4info = production_scale_program(program, total + 1024)
    entries = production_like_entries(p4info, total, seed=3)
    route_table = p4info.table_by_name("ipv4_tbl").id
    routes = [e for e in entries if e.table_id == route_table]
    return scaled, p4info, entries, routes


def _probe_updates(routes, count, seed):
    return crm_fill_updates([], churn=count, seed=seed, victims=routes)


def _seeded_switch(program, p4info, entries, indexed):
    switch = ReferenceSwitch(program, indexed=indexed)
    assert switch.set_forwarding_pipeline_config(p4info).ok
    assert switch.preload(entries) == len(entries)
    return switch


def _updates_per_second(switch, updates):
    start = time.perf_counter()
    for update in updates:
        status = switch.write(WriteRequest(updates=(update,))).statuses[0]
        assert status.ok, status.message
    elapsed = time.perf_counter() - start
    return len(updates) / elapsed


def _oracle_updates_per_second(p4info, entries, updates):
    oracle = Oracle(p4info)
    oracle.resync(entries)
    ok = WriteResponse(statuses=(Status(),))
    start = time.perf_counter()
    for update in updates:
        oracle.judge_batch([update], ok, read_back=None)
    elapsed = time.perf_counter() - start
    return len(updates) / elapsed


def _packets_per_second(switch):
    payloads = [
        deparse_packet(make_ipv4_packet(dst_addr=0x0A000000 + i * 7919))
        for i in range(PACKET_PROBE)
    ]
    switch.send_packet(payloads[0], ingress_port=1)  # warm the indices
    start = time.perf_counter()
    for index, payload in enumerate(payloads):
        switch.send_packet(payload, ingress_port=1 + index % 4)
    elapsed = time.perf_counter() - start
    switch.drain_packet_ins()
    return len(payloads) / elapsed


def test_million_entry_state_table():
    tiers, min_speedup = _tiers()
    rows = []
    per_update = {}
    per_packet = {}
    speedups = {}
    for total in tiers:
        program, p4info, entries, routes = _workload(total)

        switch = _seeded_switch(program, p4info, entries, indexed=True)
        upd_s = _updates_per_second(switch, _probe_updates(routes, CHURN_PROBE, seed=4))
        pkt_s = _packets_per_second(switch)
        oracle_upd_s = _oracle_updates_per_second(
            p4info, entries, _probe_updates(routes, CHURN_PROBE, seed=5)
        )

        # Linear baseline: a small probe is enough — each update costs O(N).
        linear_probe = max(4, min(40, 800_000 // total))
        linear = _seeded_switch(program, p4info, entries, indexed=False)
        linear_upd_s = _updates_per_second(
            linear, _probe_updates(routes, linear_probe, seed=4)
        )

        per_update[total] = 1.0 / upd_s
        per_packet[total] = 1.0 / pkt_s
        speedups[total] = upd_s / linear_upd_s
        rows.append(
            [
                f"{total:,}",
                f"{upd_s:,.0f}",
                f"{oracle_upd_s:,.0f}",
                f"{pkt_s:,.0f}",
                f"{linear_upd_s:,.1f}",
                f"{speedups[total]:,.1f}x",
            ]
        )

    print_table(
        "Production-scale state (ToR model, pre-seeded, CRM churn probe)",
        ["entries", "switch upd/s", "oracle upd/s", "pkt/s", "linear upd/s", "speedup"],
        rows,
    )

    base = tiers[0]
    top = tiers[-1]
    # Near-flat per-update and per-packet cost across a 20x-1000x size span.
    assert per_update[top] <= FLATNESS_BOUND * per_update[base], (
        f"per-update cost grew {per_update[top] / per_update[base]:.1f}x "
        f"from {base:,} to {top:,} entries"
    )
    assert per_packet[top] <= FLATNESS_BOUND * per_packet[base], (
        f"per-packet cost grew {per_packet[top] / per_packet[base]:.1f}x "
        f"from {base:,} to {top:,} entries"
    )
    # The gating speedup tier is the second one (100k at paper scale).
    gate = tiers[1]
    assert speedups[gate] >= min_speedup, (
        f"indexed/linear speedup at {gate:,} entries is only "
        f"{speedups[gate]:.1f}x (need >={min_speedup:.0f}x)"
    )
