"""Transport-fault soak benchmark.

Runs repeated fuzz cycles against a healthy PINS stack behind a chaos
transport (drops, duplicates, delays, resets, crashes) and verifies the
zero-phantom acceptance criterion at scale: every cycle's model-incident
set and final switch state must equal a fault-free run of the same seed,
while the transport ledger (retries, resyncs, reconnects) proves the
faults actually fired.

The ``smoke`` test is the CI job (seconds); the full soak scales with
``REPRO_BENCH_SCALE=paper``.
"""

import os
import time

from conftest import print_table

from repro.switchv.campaign import CampaignConfig, run_soak_campaign

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def _soak(cycles, writes, updates, profile="chaos", seed=5):
    config = CampaignConfig(
        fuzz_writes=writes,
        fuzz_updates_per_write=updates,
        seed=seed,
        soak_cycles=cycles,
    )
    start = time.perf_counter()
    outcome = run_soak_campaign("pins", config, fault_profile=profile)
    return outcome, time.perf_counter() - start


def test_soak_smoke():
    """CI gate: a short chaos soak with zero phantoms."""
    outcome, elapsed = _soak(cycles=2, writes=8, updates=15)
    print_table(
        "transport soak (smoke)",
        ["metric", "value"],
        [
            ["cycles", outcome.cycles],
            ["phantom cycles", outcome.phantom_cycles],
            ["state divergences", outcome.state_divergences],
            ["faults injected", outcome.faults_injected],
            ["retries", outcome.retries],
            ["ambiguous batches", outcome.ambiguous_batches],
            ["oracle resyncs", outcome.resyncs],
            ["reconnects", outcome.reconnects],
            ["wall clock", f"{elapsed:.1f}s"],
        ],
    )
    assert outcome.ok
    assert outcome.faults_injected > 0


def test_soak_per_profile():
    """Longer soak: every single-fault profile at its catalogue rate."""
    cycles, writes, updates = (2, 10, 15) if SCALE == "small" else (5, 40, 30)
    rows = []
    all_ok = True
    for profile in ("drop_request", "drop_response", "duplicate", "delay",
                    "reset", "crash", "chaos"):
        outcome, elapsed = _soak(cycles, writes, updates, profile=profile)
        all_ok = all_ok and outcome.ok
        rows.append(
            [profile, outcome.cycles, outcome.phantom_cycles,
             outcome.faults_injected, outcome.retries, outcome.resyncs,
             f"{elapsed:.1f}s"]
        )
    print_table(
        f"transport soak per profile ({SCALE})",
        ["profile", "cycles", "phantoms", "faults", "retries", "resyncs", "time"],
        rows,
    )
    assert all_ok
