"""Fleet-campaign benchmark: sequential vs sharded catalogue wall time.

Runs the full pins+cerberus fault catalogue once sequentially
(run_full_campaign per stack) and once sharded across worker processes
(run_fleet_campaign), records the wall-clock table, and verifies the
acceptance bar: identical detection verdicts and incident dedup-key sets
for the same seeds.  The speedup assertion is gated on the machine
actually having cores to shard over; the equivalence assertion is not.

The ``smoke`` test is the CI job (2 workers, seconds); the full table
scales with ``REPRO_BENCH_SCALE=paper``.
"""

import os
import time

from conftest import print_table

from repro.switchv.campaign import CampaignConfig, run_full_campaign
from repro.switchv.fleet import run_fleet_campaign

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def _config():
    writes, updates, entries = (3, 6, 25) if SCALE == "small" else (15, 25, 70)
    return CampaignConfig(
        fuzz_writes=writes,
        fuzz_updates_per_write=updates,
        workload_entries=entries,
        seed=11,
        run_trivial=False,
    )


def _assert_equivalent(sequential, report):
    clean = report.fault_outcomes(profile=None)
    assert len(clean) == len(sequential)
    for seq, par in zip(clean, sequential, strict=True):
        assert seq.fault.name == par.fault.name
        assert seq.detected == par.detected, seq.fault.name
        assert {i.dedup_key() for i in seq.incidents} == {
            i.dedup_key() for i in par.incidents
        }, seq.fault.name


def test_fleet_smoke():
    """CI gate: a 2-worker fleet over the full catalogue, equivalent to
    the sequential run."""
    config = _config()
    start = time.perf_counter()
    sequential = [
        outcome
        for stack in ("pins", "cerberus")
        for outcome in run_full_campaign(stack, config)
    ]
    sequential_s = time.perf_counter() - start
    report = run_fleet_campaign(config=config, workers=2)
    print_table(
        "fleet campaign (smoke, 2 workers)",
        ["metric", "value"],
        [
            ["tasks", len(report.results)],
            ["detected", f"{report.detected}/{len(report.results)}"],
            ["degraded tasks", report.degraded_tasks],
            ["sequential wall clock", f"{sequential_s:.1f}s"],
            ["fleet wall clock", f"{report.elapsed_seconds:.1f}s"],
            ["speedup", f"{sequential_s / report.elapsed_seconds:.2f}x"],
        ],
    )
    _assert_equivalent(sequential, report)
    assert report.degraded_tasks == 0


def test_fleet_worker_sweep():
    """The Table-3-style scaling table: catalogue wall clock by worker
    count, with the workers=4 acceptance row asserted for equivalence
    (and for speedup when the machine has cores to shard over)."""
    config = _config()
    start = time.perf_counter()
    sequential = [
        outcome
        for stack in ("pins", "cerberus")
        for outcome in run_full_campaign(stack, config)
    ]
    sequential_s = time.perf_counter() - start

    rows = [["sequential", 1, f"{sequential_s:.1f}s", "1.00x", "-"]]
    four_worker_report = None
    for workers in (2, 4):
        report = run_fleet_campaign(config=config, workers=workers)
        _assert_equivalent(sequential, report)
        rows.append(
            [
                "fleet",
                workers,
                f"{report.elapsed_seconds:.1f}s",
                f"{sequential_s / report.elapsed_seconds:.2f}x",
                report.degraded_tasks,
            ]
        )
        if workers == 4:
            four_worker_report = report
    print_table(
        f"fault catalogue: sequential vs sharded ({SCALE}, "
        f"{os.cpu_count()} cpu(s))",
        ["mode", "workers", "wall clock", "speedup", "degraded"],
        rows,
    )
    # Wall-clock speedup needs hardware parallelism; equivalence does not.
    if (os.cpu_count() or 1) >= 2:
        assert four_worker_report.elapsed_seconds < sequential_s
