"""Parallel + memoized packet generation benchmark.

Packet generation is SwitchV's slowest stage (Table 3: 413–1099 s against
58–64 s of testing).  This benchmark measures the two levers this repo adds
on top of the paper's whole-run cache:

* **Sharded goal solving** — the ToR entry-coverage workload generated
  sequentially vs. with ``workers=4`` forked solver processes.
* **Per-goal caching** — a warm re-run (zero solver queries), and the §6.3
  refinement: after editing one table entry, only the goals whose solved
  formulas mention it are re-solved.
* **Cross-state solver pooling** — the same single-entry-edit replay
  through a shared :class:`~repro.smt.pool.SolverPool`, which keeps the
  bit-blasted encoding, learned clauses, and solved-formula results alive
  across states (see ``benchmarks/test_compiled_eval.py`` for the full
  edit-sequence table).

Run with ``REPRO_BENCH_SCALE=paper`` for the full 798-entry workload.
"""

import os
import time

from conftest import print_table

from repro.bmv2.entries import decode_table_entry
from repro.p4.p4info import build_p4info
from repro.p4.programs import build_tor_program
from repro.smt.pool import SolverPool
from repro.switchv.harness import DataPlaneStats
from repro.switchv.report import render_generation_stats
from repro.symbolic import PacketGenerator
from repro.symbolic.cache import PacketCache
from repro.symbolic.coverage import CoverageMode
from repro.workloads import production_like_entries


def _tor_state(total, seed=1):
    program = build_tor_program()
    p4info = build_p4info(program)
    entries = production_like_entries(p4info, total=total, seed=seed)
    state = {}
    for entry in entries:
        decoded = decode_table_entry(p4info, entry)
        state.setdefault(decoded.table_name, []).append(decoded)
    return program, p4info, entries, state


def _timed_generate(program, state, pool=None, **kwargs):
    start = time.perf_counter()
    generator = PacketGenerator(program, state, solver_pool=pool)
    result = generator.generate(CoverageMode.ENTRY, **kwargs)
    return time.perf_counter() - start, result


def _print_effort(label, result, seconds):
    stats = DataPlaneStats(
        goals_total=result.stats.goals_total,
        goals_covered=result.stats.goals_covered,
        goals_from_cache=result.stats.goals_from_cache,
        generation_seconds=seconds,
        solver_queries=result.stats.solver_queries,
        sat_conflicts=result.stats.sat_conflicts,
        sat_decisions=result.stats.sat_decisions,
        sat_propagations=result.stats.sat_propagations,
        workers=result.stats.workers,
    )
    print(f"\n--- {label} ---")
    print(render_generation_stats(stats))


def test_parallel_vs_sequential(scale):
    program, _p4info, _entries, state = _tor_state(scale.inst1_entries)

    seq_seconds, seq = _timed_generate(program, state)
    par_seconds, par = _timed_generate(program, state, workers=4)

    print_table(
        f"Parallel generation (ToR entry coverage, {scale.name} scale)",
        ["Config", "Goals", "Covered", "Queries", "Wall clock", "Speedup"],
        [
            ("sequential", seq.stats.goals_total, seq.stats.goals_covered,
             seq.stats.solver_queries, f"{seq_seconds:.1f}s", "1.00x"),
            ("workers=4", par.stats.goals_total, par.stats.goals_covered,
             par.stats.solver_queries, f"{par_seconds:.1f}s",
             f"{seq_seconds / max(par_seconds, 1e-9):.2f}x"),
        ],
    )
    _print_effort("sequential", seq, seq_seconds)
    _print_effort("workers=4", par, par_seconds)

    # The covered-goal set is worker-count-invariant.
    assert {p.goal for p in par.packets} == {p.goal for p in seq.packets}
    assert par.uncovered == seq.uncovered
    # The speedup claim needs actual cores to parallelise over: each worker
    # re-learns clauses its shard needs (~2x aggregate solver effort), so 4
    # workers pay off from ~4 cores up, while on a 1–2 vCPU container the
    # sharding can only add fork overhead.
    if (os.cpu_count() or 1) >= 4:
        assert par_seconds < seq_seconds, (
            f"workers=4 ({par_seconds:.1f}s) must beat sequential "
            f"({seq_seconds:.1f}s) on {os.cpu_count()} cores"
        )


def test_per_goal_cache_reuse(scale):
    program, _p4info, entries, state = _tor_state(scale.inst1_entries)
    cache = PacketCache()

    cold_seconds, cold = _timed_generate(program, state, goal_cache=cache)
    warm_seconds, warm = _timed_generate(program, state, goal_cache=cache)

    # Edit one table entry: drop the last installed route.
    p4info = build_p4info(program)
    edited_state = {}
    for entry in entries[:-1]:
        decoded = decode_table_entry(p4info, entry)
        edited_state.setdefault(decoded.table_name, []).append(decoded)
    edit_seconds, edited = _timed_generate(program, edited_state, goal_cache=cache)

    # The same edit replayed through a warm SolverPool (no goal cache):
    # the pool answers unchanged solved formulas from its memo, so only
    # edit-affected goals touch a solver — and that solver is warm.
    pool = SolverPool()
    _timed_generate(program, state, pool=pool)  # warm the pool on state 0
    pool_seconds, pooled = _timed_generate(program, edited_state, pool=pool)

    print_table(
        f"Per-goal cache (ToR entry coverage, {scale.name} scale)",
        ["Run", "Goals", "From cache", "Pool hits", "Queries", "Wall clock"],
        [
            ("cold", cold.stats.goals_total, cold.stats.goals_from_cache,
             0, cold.stats.solver_queries, f"{cold_seconds:.2f}s"),
            ("warm (unchanged)", warm.stats.goals_total, warm.stats.goals_from_cache,
             0, warm.stats.solver_queries, f"{warm_seconds:.2f}s"),
            ("warm (1 entry edited)", edited.stats.goals_total,
             edited.stats.goals_from_cache, 0, edited.stats.solver_queries,
             f"{edit_seconds:.2f}s"),
            ("pool (1 entry edited)", pooled.stats.goals_total,
             pooled.stats.goals_from_cache, pooled.stats.pool_hits,
             pooled.stats.solver_queries, f"{pool_seconds:.2f}s"),
        ],
    )

    # Unchanged state: everything from cache, zero solving.
    assert warm.stats.solver_queries == 0
    assert warm.stats.goals_from_cache == warm.stats.goals_total
    assert warm_seconds < cold_seconds
    # Edited state: only the affected goals are re-solved.
    assert 0 < edited.stats.solver_queries < cold.stats.solver_queries
    assert edited.stats.goals_from_cache > edited.stats.goals_total // 2
    # Warm pool: most attempts are memo hits, and the packets are
    # byte-identical to the cold run on the same state (canonical
    # witnesses are solver-history-independent).
    assert pooled.stats.pool_hits > 0
    assert pooled.stats.solver_queries < cold.stats.solver_queries
    cold_edit = PacketGenerator(program, edited_state).generate(CoverageMode.ENTRY)
    assert [(p.goal, p.packet) for p in pooled.packets] == [
        (p.goal, p.packet) for p in cold_edit.packets
    ]


def test_parallel_smoke():
    """CI smoke (<60 s): a small workload through the parallel engine and
    the per-goal cache, asserting the correctness invariants only."""
    program, _p4info, _entries, state = _tor_state(30, seed=2)
    cache = PacketCache()

    seq_seconds, seq = _timed_generate(program, state, goal_cache=cache)
    par_seconds, par = _timed_generate(program, state, workers=2)
    warm_seconds, warm = _timed_generate(program, state, goal_cache=cache)

    print_table(
        "Parallel generation smoke (ToR, 30 entries)",
        ["Config", "Covered", "Queries", "Wall clock"],
        [
            ("sequential", seq.stats.goals_covered, seq.stats.solver_queries,
             f"{seq_seconds:.2f}s"),
            ("workers=2", par.stats.goals_covered, par.stats.solver_queries,
             f"{par_seconds:.2f}s"),
            ("warm cache", warm.stats.goals_covered, warm.stats.solver_queries,
             f"{warm_seconds:.2f}s"),
        ],
    )
    assert {p.goal for p in par.packets} == {p.goal for p in seq.packets}
    assert warm.stats.solver_queries == 0
