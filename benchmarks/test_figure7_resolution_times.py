"""Figure 7 — number of days required to resolve bugs in PINS.

The figure is an observational histogram over the 122 PINS bugs, split by
the SwitchV component that found each (Total / Symbolic / Fuzzer), with 9
bugs unresolved.  The paper publishes exact days only for the Appendix-A
sample; we replay that sample (carried on the fault catalogue) and fill
the population to 122 with a deterministic synthesis matching the paper's
aggregate statements (§6.1: majority fixed within 14 days, 33% within 5
days — against a 66-day mean for non-SwitchV issues).

The campaign cross-check ties the histogram to live detections: every
catalogue bug contributes its published resolution time only if the
SwitchV campaign actually detects it.
"""

from conftest import print_table

from repro.switch.faults import faults_for_stack
from repro.switchv.campaign import CampaignConfig, run_fault_campaign
from repro.workloads.bug_catalog import (
    FIGURE7_BUCKETS,
    PINS_UNRESOLVED,
    aggregate_figure7,
    median_resolution_days,
    synthesize_resolution_days,
)


def _build_population(scale):
    """Detect the catalogue live, then extend to the published population."""
    config = CampaignConfig(
        fuzz_writes=scale.campaign_fuzz_writes,
        fuzz_updates_per_write=25,
        workload_entries=scale.campaign_entries,
        seed=11,
        run_trivial=False,
    )
    detected_days = []
    for fault in faults_for_stack("pins"):
        outcome = run_fault_campaign(fault.name, "pins", config)
        if outcome.detected:
            detected_days.append((fault.discovered_by, fault.days_to_resolution))
    population = synthesize_resolution_days(total=122)
    return detected_days, population


def test_figure7_histogram(benchmark, scale):
    detected_days, population = benchmark.pedantic(
        _build_population, args=(scale,), rounds=1, iterations=1
    )
    series = aggregate_figure7(population)

    rows = [
        (label, series["Total"][label], series["Symbolic"][label], series["Fuzzer"][label])
        for label, _low, _high in FIGURE7_BUCKETS
    ]
    print_table(
        "Figure 7: days to resolution (PINS)",
        ["Bucket", "Total", "Symbolic", "Fuzzer"],
        rows,
    )
    unresolved = sum(1 for _t, d in population if d is None)
    print(f"unresolved: {unresolved} (paper: {PINS_UNRESOLVED})")
    print(f"median days to resolution: {median_resolution_days(population):.1f}")
    print(f"live campaign detected {len(detected_days)} catalogue bugs")

    # Shape assertions (the figure's qualitative content).
    resolved = [d for _t, d in population if d is not None]
    within_14 = sum(1 for d in resolved if d <= 14) / len(resolved)
    within_5 = sum(1 for d in resolved if d <= 5) / len(resolved)
    assert within_14 > 0.5  # "The majority of bugs ... fixed within 14 days"
    assert 0.25 <= within_5 <= 0.45  # "33% of bugs fixed within 5 days"
    assert unresolved == PINS_UNRESOLVED
    # The histogram's mode sits in the low buckets and there is a long tail.
    assert series["Total"]["0-3"] + series["Total"]["3-6"] > series["Total"][">= 150"]
    assert series["Total"][">= 150"] >= 1
    # Resolution is much faster than the 66-day mean of the paper's
    # non-SwitchV control group.
    mean = sum(resolved) / len(resolved)
    assert mean < 66
    # Every live-detected catalogue bug carries published data consistent
    # with the histogram's population prefix.
    assert len(detected_days) >= 20
